package apps

import (
	"math"
	"strings"
	"testing"

	"slfe/internal/cluster"
	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
)

// Duplicate (key, domain) registrations must be rejected with a clear
// error, not silently overwritten.
func TestRegisterRejectsDuplicates(t *testing.T) {
	build := func(graph.VertexID, int) Runnable { return AsRunnable(SSSP(0)) }
	if err := Register(RunnableApp{Key: "dup-test", Domain: "f64", Build: build}); err != nil {
		t.Fatal(err)
	}
	err := Register(RunnableApp{Key: "dup-test", Domain: "f64", Build: build})
	if err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate error is not descriptive: %v", err)
	}
	// A different domain under the same key is fine.
	if err := Register(RunnableApp{Key: "dup-test", Domain: "f32", Build: build}); err != nil {
		t.Fatalf("distinct domain rejected: %v", err)
	}
	if got := RunnableDomains("dup-test"); len(got) != 2 {
		t.Fatalf("dup-test domains = %v", got)
	}
	// Incomplete registrations are rejected too.
	if err := Register(RunnableApp{Key: "dup-test"}); err == nil {
		t.Fatal("registration without Domain/Build accepted")
	}
}

// Every registered pairing must build and execute.
func TestRunnablesExecute(t *testing.T) {
	g := gen.RMAT(256, 2048, gen.DefaultRMAT, 8, 17)
	for _, a := range Runnables() {
		if strings.HasPrefix(a.Key, "dup-test") {
			continue
		}
		runG := g
		if a.NeedsSym {
			runG = Symmetrize(g)
		}
		out, err := a.Build(0, 4).Execute(runG, cluster.Options{Nodes: 2, RR: true})
		if err != nil {
			t.Fatalf("%s/%s: %v", a.Key, a.Domain, err)
		}
		if len(out.Values) != g.NumVertices() {
			t.Fatalf("%s/%s: %d values for %d vertices", a.Key, a.Domain, len(out.Values), g.NumVertices())
		}
	}
}

// The §2.2 satellite: f32 arith programs use exact-equality stability (the
// paper's hardware-precision rule) — no StableEps workaround — while the
// f64 instantiations keep the tolerance their 52-bit mantissa needs.
func TestF32ProgramsUseExactStability(t *testing.T) {
	if eps := PageRankF32(10).StableEps; eps != 0 {
		t.Fatalf("PageRankF32 carries StableEps %v; f32 must use exact equality", eps)
	}
	if eps := TunkRankF32(10).StableEps; eps != 0 {
		t.Fatalf("TunkRankF32 carries StableEps %v; f32 must use exact equality", eps)
	}
	if eps := PageRank(10).StableEps; eps == 0 {
		t.Fatal("PageRank (f64) lost its StableEps tolerance; finish-early would never fire")
	}
	if eps := TunkRank(10).StableEps; eps == 0 {
		t.Fatal("TunkRank (f64) lost its StableEps tolerance")
	}
}

// Exact-equality "finish early" must actually fire on f32 PageRank: with
// redundancy reduction every vertex's rank saturates in float32 precision
// and the run terminates before its iteration cap with a non-zero
// early-converged count.
func TestF32FinishEarlyFiresWithoutStableEps(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 8, 23)
	res, err := cluster.Execute(g, PageRankF32(200), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Iterations >= 200 {
		t.Fatalf("f32 PageRank ran to its %d-iteration cap; exact-equality stability never converged", 200)
	}
	if res.Result.ECCount == 0 {
		t.Fatal("no vertices early-converged under exact-equality stability")
	}
}

// Unreached vertices must keep the NoParent sentinel even under full
// in-edge relaxation sweeps (RR catch-up scans, rebalance acquisitions):
// a proposal from an unreached source must never beat {+Inf, NoParent}
// through the parent tie-break, or mutually-adjacent unreached vertices
// would hand each other cyclic parents.
func TestSSSPTreeUnreachedKeepNoParent(t *testing.T) {
	p := SSSPTree(0)
	unreached := core.DistParent{Dist: float32(math.Inf(1)), Parent: core.NoParent}
	// Hook-level invariant: relaxing an edge from an unreached source
	// proposes nothing that Better would adopt.
	cand := p.RelaxE(7, unreached, 1.5)
	if p.Better(cand, unreached) {
		t.Fatalf("proposal %+v from an unreached source beats the unreached sentinel", cand)
	}
	if cand.Parent != core.NoParent {
		t.Fatalf("unreached source proposed parent %d", cand.Parent)
	}
	// Equivalent unreached values must not order on parent either.
	if p.Better(core.DistParent{Dist: float32(math.Inf(1)), Parent: 3}, unreached) {
		t.Fatal("an Inf-distance value with a parent ordered above the unreached sentinel")
	}

	// End-to-end: a graph with an unreachable 3-cycle; every unreached
	// vertex must come back with NoParent.
	g := graph.MustBuild(6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1}, {Src: 5, Dst: 3, Weight: 1},
	})
	res, err := cluster.Execute(g, SSSPTree(0), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 3; v < 6; v++ {
		dp := res.Result.Values[v]
		if !math.IsInf(float64(dp.Dist), 1) || dp.Parent != core.NoParent {
			t.Fatalf("unreachable vertex %d ended with %+v", v, dp)
		}
	}
}

// The composite SSSPTree program must produce a valid shortest-path tree
// (the parent edge exists and witnesses the distance).
func TestSSSPTreeParentsWitnessDistances(t *testing.T) {
	g := gen.Grid(24, 24, 9, 7)
	res, err := cluster.Execute(g, SSSPTree(0), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := cluster.Execute(g, SSSPF32(0), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, dp := range res.Result.Values {
		if dist.Result.Values[v] != dp.Dist {
			t.Fatalf("vertex %d: tree distance %v, plain f32 SSSP %v", v, dp.Dist, dist.Result.Values[v])
		}
		if v == 0 || dp.Parent == core.NoParent {
			continue
		}
		witnessed := false
		ins, ws := g.InNeighbors(graph.VertexID(v)), g.InWeights(graph.VertexID(v))
		for i, u := range ins {
			if u == graph.VertexID(dp.Parent) && res.Result.Values[u].Dist+ws[i] == dp.Dist {
				witnessed = true
				break
			}
		}
		if !witnessed {
			t.Fatalf("vertex %d: parent %d does not witness distance %v", v, dp.Parent, dp.Dist)
		}
	}
}
