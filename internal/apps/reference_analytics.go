package apps

import (
	"math"
	"sort"

	"slfe/internal/core"
	"slfe/internal/graph"
)

// RefTriangleCount counts triangles on the simple undirected view by
// enumerating ordered wedges, the textbook O(sum deg^2) node-iterator.
func RefTriangleCount(g *graph.Graph) int64 {
	off, adj := simpleUndirected(g)
	n := g.NumVertices()
	var count int64
	for v := 0; v < n; v++ {
		nv := adj[off[v]:off[v+1]]
		for i, u := range nv {
			if u <= graph.VertexID(v) {
				continue
			}
			for _, w := range nv[i+1:] {
				if w <= u {
					continue
				}
				// v < u < w: count the triangle once.
				s := adj[off[u]:off[u+1]]
				k := sort.Search(len(s), func(i int) bool { return s[i] >= w })
				if k < len(s) && s[k] == w {
					count++
				}
			}
		}
	}
	return count
}

// RefKCore computes core numbers with the classic O(m) bucket-peeling
// algorithm of Batagelj–Zaveršnik.
func RefKCore(g *graph.Graph) []uint32 {
	off, adj := simpleUndirected(g)
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int(off[v+1] - off[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)
	vert := make([]graph.VertexID, n)
	fill := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		p := bin[deg[v]] + fill[deg[v]]
		fill[deg[v]]++
		pos[v] = p
		vert[p] = graph.VertexID(v)
	}
	cores := make([]uint32, n)
	start := make([]int, maxDeg+1)
	copy(start, bin[:maxDeg+1])
	for i := 0; i < n; i++ {
		v := vert[i]
		cores[v] = uint32(deg[v])
		for _, u := range adj[off[v]:off[v+1]] {
			if deg[u] > deg[v] {
				// Move u one bucket down: swap with the first vertex of
				// its current bucket, then shrink the bucket.
				du := deg[u]
				pu := pos[u]
				pw := start[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				start[du]++
				deg[u]--
			}
		}
	}
	return cores
}

// RefMSTWeight computes the minimum spanning forest weight with Kruskal's
// algorithm over the undirected view (each directed edge is one undirected
// candidate; parallel edges and self-loops are harmless).
func RefMSTWeight(g *graph.Graph) float64 {
	edges := g.Edges(nil)
	sort.Slice(edges, func(i, j int) bool {
		a, b := normEdge(edges[i].Src, edges[i].Dst, edges[i].Weight), normEdge(edges[j].Src, edges[j].Dst, edges[j].Weight)
		return edgeLess(a, b)
	})
	uf := newUnionFind(g.NumVertices())
	var total float64
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		if uf.union(e.Src, e.Dst) {
			total += float64(e.Weight)
		}
	}
	return total
}

// RefBeliefPropagation iterates the mean-field update synchronously, the
// direct transcription of the BeliefPropagation program semantics.
func RefBeliefPropagation(g *graph.Graph, prior func(g graph.View, v graph.VertexID) core.Value, coupling float64, iters int) []core.Value {
	if prior == nil {
		prior = func(_ graph.View, _ graph.VertexID) core.Value { return 0 }
	}
	if coupling == 0 {
		coupling = BeliefCoupling
	}
	n := g.NumVertices()
	cur := make([]core.Value, n)
	for v := 0; v < n; v++ {
		cur[v] = prior(g, graph.VertexID(v))
	}
	next := make([]core.Value, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			id := graph.VertexID(v)
			var acc core.Value
			ins := g.InNeighbors(id)
			ws := g.InWeights(id)
			for i, u := range ins {
				acc += float64(ws[i]) * math.Tanh(cur[u])
			}
			next[v] = prior(g, id) + coupling*acc
		}
		cur, next = next, cur
	}
	return cur
}

// IsClique reports whether members induce a complete subgraph in the
// simple undirected view of g.
func IsClique(g *graph.Graph, members []graph.VertexID) bool {
	off, adj := simpleUndirected(g)
	has := func(a, b graph.VertexID) bool {
		s := adj[off[a]:off[a+1]]
		i := sort.Search(len(s), func(i int) bool { return s[i] >= b })
		return i < len(s) && s[i] == b
	}
	for i, a := range members {
		for _, b := range members[i+1:] {
			if a == b || !has(a, b) {
				return false
			}
		}
	}
	return true
}

// ForestWeight sums the weight of fs and verifies it is acyclic and
// spanning-consistent: it returns the weight, the number of components the
// forest leaves, and false if any edge pair re-connects one component.
func ForestWeight(n int, edges []graph.Edge) (weight float64, components int, acyclic bool) {
	uf := newUnionFind(n)
	for _, e := range edges {
		if !uf.union(e.Src, e.Dst) {
			return 0, 0, false
		}
		weight += float64(e.Weight)
	}
	seen := make(map[graph.VertexID]bool)
	for v := 0; v < n; v++ {
		seen[uf.find(graph.VertexID(v))] = true
	}
	return weight, len(seen), true
}
