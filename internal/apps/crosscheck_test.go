package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slfe/internal/cluster"
	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/rrg"
)

// TestBFSLevelsMatchGuidance cross-validates two independent subsystems:
// the engine running the BFS program must produce exactly the preprocessing
// BFS levels of the rrg package.
func TestBFSLevelsMatchGuidance(t *testing.T) {
	g := gen.RMAT(2048, 16384, gen.DefaultRMAT, 1, 21)
	gd := rrg.Generate(g, []graph.VertexID{0}, nil)
	res, err := cluster.Execute(g, BFS(0), cluster.Options{Nodes: 3, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		engineLevel := res.Result.Values[v]
		if gd.Level[v] == rrg.Unreached {
			if !math.IsInf(engineLevel, 1) {
				t.Fatalf("vertex %d: engine reached (%v) but guidance did not", v, engineLevel)
			}
			continue
		}
		if engineLevel != float64(gd.Level[v]) {
			t.Fatalf("vertex %d: engine level %v vs guidance level %d", v, engineLevel, gd.Level[v])
		}
	}
}

// TestEngineDeterministic: two identical runs produce identical values and
// identical iteration counts regardless of thread count and stealing.
func TestEngineDeterministic(t *testing.T) {
	g := gen.RMAT(1024, 8192, gen.DefaultRMAT, 16, 22)
	run := func(threads int, stealing bool) []float64 {
		res, err := cluster.Execute(g, SSSP(0), cluster.Options{
			Nodes: 2, Threads: threads, Stealing: stealing, RR: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Result.Values
	}
	a := run(1, false)
	for _, cfg := range []struct {
		threads  int
		stealing bool
	}{{1, true}, {4, false}, {4, true}, {8, true}} {
		b := run(cfg.threads, cfg.stealing)
		for v := range a {
			if a[v] != b[v] && !(math.IsInf(a[v], 1) && math.IsInf(b[v], 1)) {
				t.Fatalf("threads=%d stealing=%v: vertex %d differs: %v vs %v",
					cfg.threads, cfg.stealing, v, a[v], b[v])
			}
		}
	}
}

// TestHeatConservesClamp: the clamped sources never change and no vertex
// exceeds the source temperature.
func TestHeatConservesClamp(t *testing.T) {
	g := Symmetrize(gen.Clustered(500, 2, 4, 3))
	hot := []graph.VertexID{0, 250}
	res, err := cluster.Execute(g, HeatSimulation(hot, 40), cluster.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range res.Result.Values {
		if h < 0 || h > 100 {
			t.Fatalf("vertex %d: heat %v outside [0,100]", v, h)
		}
	}
	if res.Result.Values[0] != 100 || res.Result.Values[250] != 100 {
		t.Fatal("heat sources drifted")
	}
}

// Property: PageRank mass conservation (paper formulation): the sum of
// ranks stays within [0.15n, n] for any graph, any worker count, RR on or
// off.
func TestQuickPageRankMassBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 10
		g := gen.Uniform(n, int64(rng.Intn(6*n)+n), 1, seed)
		rr := seed%2 == 0
		res, err := cluster.Execute(g, PageRank(20), cluster.Options{Nodes: rng.Intn(3) + 1, RR: rr})
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range PageRankScores(g, res.Result.Values) {
			if r < 0.1499999 {
				return false // every vertex keeps at least the base rank
			}
			sum += r
		}
		// With the paper's unnormalised recurrence, total mass is bounded by
		// n/(1-0.85) but in practice stays near n; require sanity bounds.
		return sum >= 0.15*float64(n) && sum <= 10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the BFS level of every vertex is at most the SSSP hop count
// implied by its shortest path (unit-weight consistency across programs).
func TestQuickBFSLowerBoundsSSSP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		g := gen.Uniform(n, int64(rng.Intn(4*n)), 1, seed) // unit weights
		bfs, err := cluster.Execute(g, BFS(0), cluster.Options{Nodes: 1})
		if err != nil {
			return false
		}
		sssp, err := cluster.Execute(g, SSSP(0), cluster.Options{Nodes: 1, RR: true})
		if err != nil {
			return false
		}
		// With unit weights, BFS levels and SSSP distances coincide.
		for v := range bfs.Result.Values {
			a, b := bfs.Result.Values[v], sssp.Result.Values[v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
