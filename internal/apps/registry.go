package apps

import "slfe/internal/core"

// Entry describes one Table 1 application.
type Entry struct {
	Name        string
	Agg         core.AggKind
	Implemented bool
	// Evaluated marks the five applications of the paper's §4 experiments.
	Evaluated bool
}

// Registry reproduces Table 1: every graph analytical application the paper
// lists, its aggregation class, and whether this repository implements it.
var Registry = []Entry{
	{Name: "PageRank", Agg: core.Arith, Implemented: true, Evaluated: true},
	{Name: "NumPaths", Agg: core.Arith, Implemented: true},
	{Name: "SpMV", Agg: core.Arith, Implemented: true},
	{Name: "TriangleCounting", Agg: core.Arith, Implemented: true},
	{Name: "BeliefPropagation", Agg: core.Arith, Implemented: true},
	{Name: "HeatSimulation", Agg: core.Arith, Implemented: true},
	{Name: "TunkRank", Agg: core.Arith, Implemented: true, Evaluated: true},
	{Name: "SingleSourceSP", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "MinimalSpanningTree", Agg: core.MinMax, Implemented: true},
	{Name: "ConnectedComponents", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "WidestPath", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "ApproximateDiameter", Agg: core.MinMax, Implemented: true},
	{Name: "Clique", Agg: core.MinMax, Implemented: true},
}

// Lookup returns the registry entry for name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
