package apps

import (
	"fmt"
	"sort"
	"time"

	"slfe/internal/cluster"
	"slfe/internal/comm"
	"slfe/internal/core"
	"slfe/internal/graph"
	"slfe/internal/metrics"
)

// Entry describes one Table 1 application.
type Entry struct {
	Name        string
	Agg         core.AggKind
	Implemented bool
	// Evaluated marks the five applications of the paper's §4 experiments.
	Evaluated bool
}

// Registry reproduces Table 1: every graph analytical application the paper
// lists, its aggregation class, and whether this repository implements it.
var Registry = []Entry{
	{Name: "PageRank", Agg: core.Arith, Implemented: true, Evaluated: true},
	{Name: "NumPaths", Agg: core.Arith, Implemented: true},
	{Name: "SpMV", Agg: core.Arith, Implemented: true},
	{Name: "TriangleCounting", Agg: core.Arith, Implemented: true},
	{Name: "BeliefPropagation", Agg: core.Arith, Implemented: true},
	{Name: "HeatSimulation", Agg: core.Arith, Implemented: true},
	{Name: "TunkRank", Agg: core.Arith, Implemented: true, Evaluated: true},
	{Name: "SingleSourceSP", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "MinimalSpanningTree", Agg: core.MinMax, Implemented: true},
	{Name: "ConnectedComponents", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "WidestPath", Agg: core.MinMax, Implemented: true, Evaluated: true},
	{Name: "ApproximateDiameter", Agg: core.MinMax, Implemented: true},
	{Name: "Clique", Agg: core.MinMax, Implemented: true},
}

// Lookup returns the registry entry for name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Outcome is the domain-erased result of a registry execution: values are
// projected to float64 through the program's domain, so callers (the CLI,
// experiment tables) handle every domain uniformly.
type Outcome struct {
	// Values are the domain-projected result values (Domain.Float64).
	Values []float64
	// Parents is the per-vertex predecessor tree when the program's domain
	// carries one (dist32; core.NoParent marks roots and unreached
	// vertices), nil otherwise. The float64 projection drops the parent
	// half of the composite value, so it is surfaced here for route
	// queries.
	Parents []uint32
	// Iterations is the superstep count.
	Iterations int
	// Run is worker 0's metrics; PerWorker holds every worker's.
	Run       *metrics.Run
	PerWorker []*metrics.Run
	// Elapsed / Preprocess / Comm mirror cluster.RunResult.
	Elapsed    time.Duration
	Preprocess time.Duration
	Comm       comm.Stats
	// Recovery describes failure detection and recovery when the run used
	// cluster.Options.FT (nil otherwise).
	Recovery *cluster.RecoveryReport
}

// Runnable is a domain-erased executable program: the typed Program[V] and
// its cluster plumbing hidden behind one interface so heterogeneous
// domains can share a registry.
type Runnable interface {
	// ProgramName is the underlying program's name.
	ProgramName() string
	// Execute runs the program on an in-process cluster.
	Execute(g graph.View, opt cluster.Options) (*Outcome, error)
}

// AsRunnable wraps a typed program as a Runnable.
func AsRunnable[V comparable](p *core.Program[V]) Runnable { return progRunner[V]{p} }

type progRunner[V comparable] struct{ p *core.Program[V] }

func (r progRunner[V]) ProgramName() string { return r.p.Name }

func (r progRunner[V]) Execute(g graph.View, opt cluster.Options) (*Outcome, error) {
	res, err := cluster.Execute(g, r.p, opt)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Values:     res.Result.Float64s(),
		Parents:    parentsOf(res.Result.Values),
		Iterations: res.Result.Iterations,
		Run:        res.Result.Metrics,
		PerWorker:  res.PerWorker,
		Elapsed:    res.Elapsed,
		Preprocess: res.PreprocessTime,
		Comm:       res.Comm,
		Recovery:   res.Recovery,
	}, nil
}

// parentsOf extracts the predecessor tree from composite dist32 values
// (nil for every other property type).
func parentsOf[V comparable](values []V) []uint32 {
	dp, ok := any(values).([]core.DistParent)
	if !ok {
		return nil
	}
	parents := make([]uint32, len(dp))
	for i, v := range dp {
		parents[i] = v.Parent
	}
	return parents
}

// RunnableApp is one registered (application key, value domain) pairing the
// CLI can execute.
type RunnableApp struct {
	// Key is the flag spelling ("sssp", "pr", ...).
	Key string
	// Domain names the value domain ("f64", "f32", "u32", "dist32").
	Domain string
	// Agg is the aggregation class (for help listings).
	Agg core.AggKind
	// NeedsSym runs the program on the symmetrised graph (CC).
	NeedsSym bool
	// Build constructs the program for a root/iteration configuration.
	Build func(root graph.VertexID, iters int) Runnable
}

// runnables is the (key, domain) registry; registration order is preserved
// for stable help listings.
var runnables []RunnableApp

// Register adds one (application, domain) pairing to the registry. A
// duplicate (Key, Domain) pair is a programming error — two packages
// claiming the same spelling would silently shadow each other — so it is
// reported instead of overwritten.
func Register(a RunnableApp) error {
	if a.Key == "" || a.Domain == "" || a.Build == nil {
		return fmt.Errorf("apps: Register needs Key, Domain and Build (got key=%q domain=%q)", a.Key, a.Domain)
	}
	if _, ok := LookupRunnable(a.Key, a.Domain); ok {
		return fmt.Errorf("apps: application %q is already registered for domain %q; duplicate registrations are rejected rather than silently overwritten", a.Key, a.Domain)
	}
	runnables = append(runnables, a)
	return nil
}

// MustRegister is Register for init-time wiring.
func MustRegister(a RunnableApp) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// LookupRunnable finds the (key, domain) pairing.
func LookupRunnable(key, domain string) (RunnableApp, bool) {
	for _, a := range runnables {
		if a.Key == key && a.Domain == domain {
			return a, true
		}
	}
	return RunnableApp{}, false
}

// Runnables lists every registered pairing sorted by key then domain.
func Runnables() []RunnableApp {
	out := append([]RunnableApp(nil), runnables...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// RunnableDomains lists the domains registered for key, sorted.
func RunnableDomains(key string) []string {
	var out []string
	for _, a := range runnables {
		if a.Key == key {
			out = append(out, a.Domain)
		}
	}
	sort.Strings(out)
	return out
}

func init() {
	reg := func(key, domain string, agg core.AggKind, sym bool, build func(root graph.VertexID, iters int) Runnable) {
		MustRegister(RunnableApp{Key: key, Domain: domain, Agg: agg, NeedsSym: sym, Build: build})
	}
	// The 8 Program-shaped applications, each in its float domains; the
	// label-style ones additionally in exact integers.
	reg("sssp", "f64", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(SSSP(r)) })
	reg("sssp", "f32", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(SSSPF32(r)) })
	reg("sssp", "dist32", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(SSSPTree(r)) })
	reg("bfs", "f64", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(BFS(r)) })
	reg("bfs", "f32", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(BFSF32(r)) })
	reg("bfs", "u32", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(BFSU32(r)) })
	reg("cc", "f64", core.MinMax, true, func(_ graph.VertexID, _ int) Runnable { return ccRunner[float64]{} })
	reg("cc", "f32", core.MinMax, true, func(_ graph.VertexID, _ int) Runnable { return ccRunner[float32]{} })
	reg("cc", "u32", core.MinMax, true, func(_ graph.VertexID, _ int) Runnable { return ccU32Runner{} })
	reg("wp", "f64", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(WP(r)) })
	reg("wp", "f32", core.MinMax, false, func(r graph.VertexID, _ int) Runnable { return AsRunnable(WPF32(r)) })
	reg("pr", "f64", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(PageRank(it)) })
	reg("pr", "f32", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(PageRankF32(it)) })
	reg("tr", "f64", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(TunkRank(it)) })
	reg("tr", "f32", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(TunkRankF32(it)) })
	reg("spmv", "f64", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(SpMV(it)) })
	reg("spmv", "f32", core.Arith, false, func(_ graph.VertexID, it int) Runnable { return AsRunnable(SpMVF32(it)) })
	reg("numpaths", "f64", core.Arith, false, func(r graph.VertexID, it int) Runnable { return AsRunnable(NumPaths(r, it)) })
	reg("numpaths", "f32", core.Arith, false, func(r graph.VertexID, it int) Runnable { return AsRunnable(NumPathsF32(r, it)) })
	reg("numpaths", "u32", core.Arith, false, func(r graph.VertexID, it int) Runnable { return AsRunnable(NumPathsU32(r, it)) })
	reg("heat", "f64", core.Arith, false, func(r graph.VertexID, it int) Runnable {
		return AsRunnable(HeatSimulation([]graph.VertexID{r}, it))
	})
	reg("bp", "f64", core.Arith, false, func(r graph.VertexID, it int) Runnable {
		// Demo priors: the root holds positive evidence.
		prior := func(_ graph.View, v graph.VertexID) float64 {
			if v == r {
				return 2
			}
			return 0
		}
		return AsRunnable(BeliefPropagation(prior, BeliefCoupling, it))
	})
}

// ccRunner defers CC's program construction to execution time: the program
// needs the (symmetrised) graph for its roots and labels.
type ccRunner[V core.Float] struct{}

func (ccRunner[V]) ProgramName() string { return "CC" }

func (ccRunner[V]) Execute(g graph.View, opt cluster.Options) (*Outcome, error) {
	return AsRunnable(CCIn[V](g)).Execute(g, opt)
}

type ccU32Runner struct{}

func (ccU32Runner) ProgramName() string { return "CC" }

func (ccU32Runner) Execute(g graph.View, opt cluster.Options) (*Outcome, error) {
	return AsRunnable(CCU32(g)).Execute(g, opt)
}
