package apps_test

import (
	"math"
	"math/rand"
	"testing"

	"slfe/internal/apps"
	"slfe/internal/cluster"
	"slfe/internal/gen"
	"slfe/internal/graph"
)

// randomBatch draws a mutation batch over [0, n): mostly existing-vertex
// edges, with duplicates and self-loops allowed.
func randomBatch(rng *rand.Rand, n, count int) []graph.Edge {
	batch := make([]graph.Edge, count)
	for i := range batch {
		batch[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: 1 + float32(rng.Intn(9)),
		}
	}
	return batch
}

// Warm SSSP re-execution after each batch must be bit-identical to a cold
// run on the mutated graph: the monotone wave from the added edges'
// sources reaches the same least fixed point.
func TestWarmMatchesColdSSSP(t *testing.T) {
	g := gen.Uniform(400, 1600, 4, 7)
	s, err := cluster.NewSession(2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	inc, ok := apps.AsRunnable(apps.SSSP(0)).(apps.Incremental)
	if !ok {
		t.Fatal("progRunner does not implement Incremental")
	}
	opt := cluster.Options{RR: true}
	_, resume, err := inc.ExecuteIn(s, g, opt)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for batchNo := 0; batchNo < 4; batchNo++ {
		n := g.NumVertices()
		if batchNo == 2 {
			n += 3 // grow the vertex set mid-sequence
		}
		added := randomBatch(rng, n, 60)
		g2, err := graph.WithEdges(g, added, n)
		if err != nil {
			t.Fatal(err)
		}
		out, next, err := resume.ExecuteWarm(s, g2, added, opt)
		if err != nil {
			t.Fatalf("batch %d: %v", batchNo, err)
		}
		cold, err := cluster.Execute(g2, apps.SSSP(0), cluster.Options{Nodes: 2, Threads: 2, Stealing: true, RR: true})
		if err != nil {
			t.Fatal(err)
		}
		want := cold.Result.Float64s()
		if len(out.Values) != len(want) {
			t.Fatalf("batch %d: %d values, want %d", batchNo, len(out.Values), len(want))
		}
		for v := range want {
			if out.Values[v] != want[v] && !(math.IsInf(out.Values[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("batch %d: vertex %d: warm %g vs cold %g", batchNo, v, out.Values[v], want[v])
			}
		}
		g, resume = g2, next
	}
}

// Arith programs re-run cold on ExecuteWarm (fixed-iteration semantics) and
// must match a fresh Execute with the same pinned guidance roots.
func TestWarmArithRerunsCold(t *testing.T) {
	g := gen.Uniform(300, 1200, 4, 21)
	s, err := cluster.NewSession(2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	inc := apps.AsRunnable(apps.PageRank(10)).(apps.Incremental)
	roots := inc.GuidanceRoots(g)
	if len(roots) == 0 {
		t.Fatal("no guidance roots for PageRank")
	}
	opt := cluster.Options{RR: true, GuidanceRoots: roots}
	_, resume, err := inc.ExecuteIn(s, g, opt)
	if err != nil {
		t.Fatal(err)
	}

	added := randomBatch(rand.New(rand.NewSource(7)), g.NumVertices(), 40)
	g2, err := graph.WithEdges(g, added, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := resume.ExecuteWarm(s, g2, added, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cluster.Execute(g2, apps.PageRank(10), cluster.Options{Nodes: 2, Threads: 2, Stealing: true, RR: true, GuidanceRoots: roots})
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Result.Float64s()
	for v := range want {
		if out.Values[v] != want[v] {
			t.Fatalf("vertex %d: warm rerun %g vs cold %g", v, out.Values[v], want[v])
		}
	}
}

// Pure vertex growth (no added edges) must not run the engine: prior values
// are kept and appended vertices get cold initial state.
func TestWarmVertexGrowthWithoutEdges(t *testing.T) {
	g := gen.Uniform(200, 800, 4, 5)
	s, err := cluster.NewSession(1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	inc := apps.AsRunnable(apps.SSSP(0)).(apps.Incremental)
	base, resume, err := inc.ExecuteIn(s, g, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := graph.WithEdges(g, nil, g.NumVertices()+5)
	if err != nil {
		t.Fatal(err)
	}
	out, next, err := resume.ExecuteWarm(s, grown, nil, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if next == nil {
		t.Fatal("no resume state after growth-only batch")
	}
	if len(out.Values) != g.NumVertices()+5 {
		t.Fatalf("got %d values, want %d", len(out.Values), g.NumVertices()+5)
	}
	for v, want := range base.Values {
		if out.Values[v] != want && !(math.IsInf(out.Values[v], 1) && math.IsInf(want, 1)) {
			t.Fatalf("vertex %d changed: %g vs %g", v, out.Values[v], want)
		}
	}
	for v := g.NumVertices(); v < len(out.Values); v++ {
		if !math.IsInf(out.Values[v], 1) {
			t.Fatalf("appended vertex %d: %g, want +Inf", v, out.Values[v])
		}
	}
}

// Resumes carry the vertex count of the graph they were computed on;
// shrinking the graph under a resume is an error, not silent corruption.
func TestWarmRejectsShrunkGraph(t *testing.T) {
	g := gen.Path(16)
	s, err := cluster.NewSession(1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inc := apps.AsRunnable(apps.SSSP(0)).(apps.Incremental)
	_, resume, err := inc.ExecuteIn(s, g, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := resume.ExecuteWarm(s, gen.Path(8), nil, cluster.Options{}); err == nil {
		t.Fatal("shrunk graph accepted by warm re-execution")
	}
}

// The CC runners (program built from the symmetrised execution graph) must
// implement Incremental too, and their warm runs must match cold CC.
func TestWarmMatchesColdCC(t *testing.T) {
	raw := gen.Uniform(250, 700, 4, 13)
	g := apps.Symmetrize(raw)
	s, err := cluster.NewSession(2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	entry, ok := apps.LookupRunnable("cc", "u32")
	if !ok {
		t.Fatal("cc:u32 not registered")
	}
	inc, ok := entry.Build(0, 0).(apps.Incremental)
	if !ok {
		t.Fatal("ccU32Runner does not implement Incremental")
	}
	_, resume, err := inc.ExecuteIn(s, g, cluster.Options{RR: true})
	if err != nil {
		t.Fatal(err)
	}

	// Symmetrised batch, the way a service layer feeds CC.
	rng := rand.New(rand.NewSource(3))
	half := randomBatch(rng, g.NumVertices(), 25)
	added := make([]graph.Edge, 0, 2*len(half))
	for _, e := range half {
		added = append(added, e, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	g2, err := graph.WithEdges(g, added, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := resume.ExecuteWarm(s, g2, added, cluster.Options{RR: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := entry.Build(0, 0).Execute(g2, cluster.Options{Nodes: 2, Threads: 2, Stealing: true, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold.Values {
		if out.Values[v] != cold.Values[v] {
			t.Fatalf("vertex %d: warm %g vs cold %g", v, out.Values[v], cold.Values[v])
		}
	}
}
