package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slfe/internal/cluster"
	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
)

// triangleFixture is K4 plus a pendant vertex: 4 triangles.
func triangleFixture() *graph.Graph {
	return graph.MustBuild(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4},
	})
}

func TestTriangleCountK4(t *testing.T) {
	g := triangleFixture()
	for _, nodes := range []int{1, 2, 4} {
		st, err := TriangleCount(g, cluster.Options{Nodes: nodes, Threads: 2, Stealing: true})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if st.Triangles != 4 {
			t.Fatalf("nodes=%d: got %d triangles, want 4", nodes, st.Triangles)
		}
	}
}

func TestTriangleCountIgnoresDirectionLoopsAndParallels(t *testing.T) {
	// A triangle written with mixed directions, a self-loop and a
	// duplicated edge still counts once.
	g := graph.MustBuild(3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, // parallel in both directions
		{Src: 2, Dst: 1},
		{Src: 0, Dst: 2},
		{Src: 2, Dst: 2}, // self-loop
	})
	st, err := TriangleCount(g, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Triangles != 1 {
		t.Fatalf("got %d triangles, want 1", st.Triangles)
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 1, 11)
	want := RefTriangleCount(g)
	if want == 0 {
		t.Fatal("fixture produced no triangles; pick another seed")
	}
	for _, nodes := range []int{1, 3} {
		st, err := TriangleCount(g, cluster.Options{Nodes: nodes, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if st.Triangles != want {
			t.Fatalf("nodes=%d: got %d, want %d", nodes, st.Triangles, want)
		}
	}
}

func TestTriangleCountEmptyAndEdgeless(t *testing.T) {
	empty := graph.MustBuild(0, nil)
	st, err := TriangleCount(empty, cluster.Options{Nodes: 2})
	if err != nil || st.Triangles != 0 {
		t.Fatalf("empty graph: %v, %+v", err, st)
	}
	edgeless := graph.MustBuild(10, nil)
	st, err = TriangleCount(edgeless, cluster.Options{Nodes: 2})
	if err != nil || st.Triangles != 0 {
		t.Fatalf("edgeless graph: %v, %+v", err, st)
	}
}

func TestTriangleCountProperty(t *testing.T) {
	// Distributed count equals the wedge-enumeration reference on random
	// graphs, for any worker count.
	f := func(seed int64, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := int64(rng.Intn(6 * n))
		g := gen.Uniform(n, m, 1, seed)
		st, err := TriangleCount(g, cluster.Options{Nodes: nodes})
		if err != nil {
			return false
		}
		return st.Triangles == RefTriangleCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKCorePath(t *testing.T) {
	// A path has coreness 1 everywhere (singletons 0).
	g := gen.Path(10)
	cores, err := KCore(g, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cores {
		if c != 1 {
			t.Fatalf("vertex %d: coreness %d, want 1", v, c)
		}
	}
}

func TestKCoreCliquePlusTail(t *testing.T) {
	// K4 has coreness 3; the pendant vertex has coreness 1.
	g := triangleFixture()
	cores, err := KCore(g, cluster.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{3, 3, 3, 3, 1}
	for v := range want {
		if cores[v] != want[v] {
			t.Fatalf("vertex %d: coreness %d, want %d", v, cores[v], want[v])
		}
	}
}

func TestKCoreMatchesPeeling(t *testing.T) {
	g := gen.RMAT(1024, 8192, gen.DefaultRMAT, 1, 7)
	want := RefKCore(g)
	for _, nodes := range []int{1, 4} {
		got, err := KCore(g, cluster.Options{Nodes: nodes, Threads: 2, Stealing: true})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("nodes=%d vertex %d: got %d, want %d", nodes, v, got[v], want[v])
			}
		}
	}
}

func TestKCoreProperty(t *testing.T) {
	f := func(seed int64, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(50)
		g := gen.Uniform(n, int64(rng.Intn(5*n)), 1, seed)
		got, err := KCore(g, cluster.Options{Nodes: nodes})
		if err != nil {
			return false
		}
		want := RefKCore(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCliqueApproxFindsK4(t *testing.T) {
	g := triangleFixture()
	cl, err := MaxCliqueApprox(g, 8, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Members) != 4 {
		t.Fatalf("got clique %v, want the K4", cl.Members)
	}
	if !IsClique(g, cl.Members) {
		t.Fatalf("members %v are not a clique", cl.Members)
	}
	if cl.CoreBound != 4 {
		t.Fatalf("core bound %d, want 4", cl.CoreBound)
	}
}

func TestMaxCliqueApproxAlwaysReturnsClique(t *testing.T) {
	f := func(seed int64, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := gen.Uniform(n, int64(rng.Intn(4*n)), 1, seed)
		cl, err := MaxCliqueApprox(g, 8, cluster.Options{Nodes: nodes})
		if err != nil {
			return false
		}
		if len(cl.Members) == 0 && n > 0 {
			return false
		}
		return IsClique(g, cl.Members) && len(cl.Members) <= cl.CoreBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCliqueApproxEmpty(t *testing.T) {
	cl, err := MaxCliqueApprox(graph.MustBuild(0, nil), 4, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Members) != 0 || cl.CoreBound != 0 {
		t.Fatalf("empty graph: %+v", cl)
	}
}

func TestMSTGridMatchesKruskal(t *testing.T) {
	g := gen.Grid(8, 8, 16, 3)
	want := RefMSTWeight(g)
	for _, nodes := range []int{1, 2, 4} {
		f, err := MST(g, cluster.Options{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(f.Weight, want, 1e-6) {
			t.Fatalf("nodes=%d: weight %v, want %v", nodes, f.Weight, want)
		}
		w, comps, acyclic := ForestWeight(g.NumVertices(), f.Edges)
		if !acyclic {
			t.Fatal("forest has a cycle")
		}
		if !almostEqual(w, f.Weight, 1e-6) {
			t.Fatalf("edge weights sum to %v, reported %v", w, f.Weight)
		}
		if comps != 1 {
			t.Fatalf("grid is connected; forest leaves %d components", comps)
		}
	}
}

func TestMSTForestOnDisconnectedGraph(t *testing.T) {
	// Two separate triangles: a spanning forest with 2 components and 4
	// edges.
	g := graph.MustBuild(6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}, {Src: 2, Dst: 0, Weight: 3},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 2}, {Src: 5, Dst: 3, Weight: 3},
	})
	f, err := MST(g, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Edges) != 4 {
		t.Fatalf("got %d forest edges, want 4", len(f.Edges))
	}
	if f.Weight != 6 { // 1+2 per triangle
		t.Fatalf("weight %v, want 6", f.Weight)
	}
	_, comps, _ := ForestWeight(6, f.Edges)
	if comps != 2 {
		t.Fatalf("components %d, want 2", comps)
	}
}

func TestMSTProperty(t *testing.T) {
	f := func(seed int64, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := gen.Uniform(n, int64(rng.Intn(4*n)), 64, seed)
		forest, err := MST(g, cluster.Options{Nodes: nodes})
		if err != nil {
			return false
		}
		if !almostEqual(forest.Weight, RefMSTWeight(g), 1e-4) {
			return false
		}
		_, _, acyclic := ForestWeight(n, forest.Edges)
		return acyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTDeterministicAcrossNodeCounts(t *testing.T) {
	g := gen.Uniform(200, 800, 32, 9)
	var first *Forest
	for _, nodes := range []int{1, 2, 5} {
		f, err := MST(g, cluster.Options{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = f
			continue
		}
		if len(f.Edges) != len(first.Edges) || f.Weight != first.Weight {
			t.Fatalf("nodes=%d: %d edges weight %v; first run %d edges weight %v",
				nodes, len(f.Edges), f.Weight, len(first.Edges), first.Weight)
		}
		for i := range f.Edges {
			if f.Edges[i] != first.Edges[i] {
				t.Fatalf("nodes=%d: edge %d differs: %+v vs %+v", nodes, i, f.Edges[i], first.Edges[i])
			}
		}
	}
}

func TestBeliefPropagationMatchesReference(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 4, 13)
	prior := func(_ graph.View, v graph.VertexID) core.Value {
		if v%17 == 0 {
			return 2.0 // observed "fraud" evidence
		}
		if v%23 == 0 {
			return -2.0 // observed "benign" evidence
		}
		return 0
	}
	const iters = 20
	want := RefBeliefPropagation(g, prior, BeliefCoupling, iters)
	// Evidence vertices are the information sources: RR guidance must be
	// rooted there so lastIter reflects when evidence can last arrive (see
	// the BeliefPropagation doc comment).
	var evidence []graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if v%17 == 0 || v%23 == 0 {
			evidence = append(evidence, graph.VertexID(v))
		}
	}
	for _, rr := range []bool{false, true} {
		// Without RR the engine is exactly the synchronous iteration; with
		// RR, "finish early" freezes vertices once their value is stable to
		// within StableEps, so beliefs may lag the reference by a few ULP-
		// scale steps of the tail of convergence (§3.7: EC bypassing only
		// skips computations whose result would repeat).
		tol := 1e-9
		if rr {
			tol = 5e-3
		}
		for _, nodes := range []int{1, 3} {
			res, err := cluster.Execute(g, BeliefPropagation(prior, BeliefCoupling, iters),
				cluster.Options{Nodes: nodes, RR: rr, GuidanceRoots: evidence})
			if err != nil {
				t.Fatal(err)
			}
			assertValues(t, res.Result.Values, want, tol, "bp")
		}
	}
}

func TestBeliefPropagationNeutralGraphStaysNeutral(t *testing.T) {
	// With zero priors everywhere the fixed point is identically zero.
	g := gen.Uniform(100, 400, 4, 5)
	res, err := cluster.Execute(g, BeliefPropagation(nil, 0.25, 10), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range res.Result.Values {
		if b != 0 {
			t.Fatalf("vertex %d: belief %v, want 0", v, b)
		}
	}
}

func TestBeliefPropagationBounded(t *testing.T) {
	// tanh bounds each neighbour's vote by 1, so |belief| <= |prior| +
	// coupling * weighted in-degree.
	g := gen.Uniform(150, 600, 1, 21)
	prior := func(_ graph.View, v graph.VertexID) core.Value {
		return float64(int(v%5)) - 2
	}
	const coupling = 0.3
	res, err := cluster.Execute(g, BeliefPropagation(prior, coupling, 30), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range res.Result.Values {
		id := graph.VertexID(v)
		var wsum float64
		for _, w := range g.InWeights(id) {
			wsum += float64(w)
		}
		bound := 2 + coupling*wsum + 1e-9
		if b > bound || b < -bound {
			t.Fatalf("vertex %d: belief %v exceeds bound %v", v, b, bound)
		}
	}
}

func TestHIndex(t *testing.T) {
	vals := []uint32{5, 4, 3, 2, 1, 0}
	ids := []graph.VertexID{0, 1, 2, 3, 4, 5}
	if h := hIndex(vals, ids); h != 3 {
		t.Fatalf("h-index of 5,4,3,2,1,0 = %d, want 3", h)
	}
	if h := hIndex(vals, nil); h != 0 {
		t.Fatalf("empty h-index = %d, want 0", h)
	}
	if h := hIndex([]uint32{9}, []graph.VertexID{0}); h != 1 {
		t.Fatalf("single high value h-index = %d, want 1", h)
	}
}

func TestSimpleUndirectedDedups(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 1},
		{Src: 2, Dst: 0},
	})
	off, adj := simpleUndirected(g)
	want := [][]graph.VertexID{{1, 2}, {0}, {0}}
	for v := range want {
		got := adj[off[v]:off[v+1]]
		if len(got) != len(want[v]) {
			t.Fatalf("vertex %d: adjacency %v, want %v", v, got, want[v])
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("vertex %d: adjacency %v, want %v", v, got, want[v])
			}
		}
	}
}

func TestUnionFindDeterminism(t *testing.T) {
	a, b := newUnionFind(10), newUnionFind(10)
	pairs := [][2]graph.VertexID{{1, 2}, {3, 4}, {2, 3}, {8, 9}, {0, 9}}
	for _, p := range pairs {
		a.union(p[0], p[1])
	}
	// Same unions in a different order converge to the same roots because
	// union always keeps the smaller root.
	for i := len(pairs) - 1; i >= 0; i-- {
		b.union(pairs[i][0], pairs[i][1])
	}
	for v := graph.VertexID(0); v < 10; v++ {
		if a.find(v) != b.find(v) {
			t.Fatalf("vertex %d: roots %d vs %d", v, a.find(v), b.find(v))
		}
	}
}

func TestNumPathsMatchesReference(t *testing.T) {
	// A DAG where path counts are non-trivial: layered random edges.
	rng := rand.New(rand.NewSource(8))
	var edges []graph.Edge
	const layers, width = 6, 30
	n := layers * width
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for k := 0; k < 3; k++ {
				src := graph.VertexID(l*width + i)
				dst := graph.VertexID((l+1)*width + rng.Intn(width))
				edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: 1})
			}
		}
	}
	g := graph.MustBuild(n, edges)
	const iters = 8
	want := RefNumPaths(g, 0, iters)
	for _, nodes := range []int{1, 3} {
		res, err := cluster.Execute(g, NumPaths(0, iters), cluster.Options{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		assertValues(t, res.Result.Values, want, 0, "numpaths")
	}
}

func TestHeatSimulationMatchesManualIteration(t *testing.T) {
	g := gen.Uniform(120, 600, 1, 15)
	hot := []graph.VertexID{0, 7}
	const iters = 12
	res, err := cluster.Execute(g, HeatSimulation(hot, iters), cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Manual Jacobi iteration of the diffusion recurrence.
	n := g.NumVertices()
	cur := make([]core.Value, n)
	for _, h := range hot {
		cur[h] = 100
	}
	next := make([]core.Value, n)
	hotSet := map[graph.VertexID]bool{0: true, 7: true}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			id := graph.VertexID(v)
			if hotSet[id] {
				next[v] = cur[v]
				continue
			}
			d := g.InDegree(id)
			if d == 0 {
				next[v] = cur[v]
				continue
			}
			var acc core.Value
			for _, u := range g.InNeighbors(id) {
				acc += cur[u]
			}
			next[v] = (1-HeatAlpha)*cur[v] + HeatAlpha*acc/float64(d)
		}
		cur, next = next, cur
	}
	assertValues(t, res.Result.Values, cur, 1e-9, "heat")
}
