package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slfe/internal/cluster"
	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func assertValues(t *testing.T, got, want []core.Value, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range want {
		if !almostEqual(got[v], want[v], tol) {
			t.Fatalf("%s: vertex %d: got %v, want %v", label, v, got[v], want[v])
		}
	}
}

// figure1 returns the worked SSSP example of the paper (Figure 1) with its
// published weights.
func figure1() *graph.Graph {
	return graph.MustBuild(6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 3, Weight: 2},
		{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 4, Weight: 1},
		{Src: 3, Dst: 4, Weight: 2}, {Src: 4, Dst: 5, Weight: 1},
	})
}

func TestSSSPFigure1(t *testing.T) {
	g := figure1()
	want := []core.Value{0, 1, 2, 2, 3, 4} // Figure 1b, final column
	for _, rr := range []bool{false, true} {
		for _, nodes := range []int{1, 2, 3} {
			res, err := cluster.Execute(g, SSSP(0), cluster.Options{Nodes: nodes, RR: rr, Threads: 2, Stealing: true})
			if err != nil {
				t.Fatalf("rr=%v nodes=%d: %v", rr, nodes, err)
			}
			assertValues(t, res.Result.Values, want, 0, "figure1")
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := gen.RMAT(2048, 16384, gen.DefaultRMAT, 32, 5)
	want := RefSSSP(g, 0)
	for _, rr := range []bool{false, true} {
		for _, nodes := range []int{1, 4} {
			res, err := cluster.Execute(g, SSSP(0), cluster.Options{Nodes: nodes, RR: rr})
			if err != nil {
				t.Fatal(err)
			}
			assertValues(t, res.Result.Values, want, 1e-9, "sssp")
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := gen.RMAT(1024, 8192, gen.DefaultRMAT, 1, 6)
	want := RefBFS(g, 0)
	res, err := cluster.Execute(g, BFS(0), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	assertValues(t, res.Result.Values, want, 0, "bfs")
}

func TestWPMatchesReference(t *testing.T) {
	g := gen.RMAT(1024, 8192, gen.DefaultRMAT, 64, 7)
	want := RefWP(g, 0)
	for _, rr := range []bool{false, true} {
		res, err := cluster.Execute(g, WP(0), cluster.Options{Nodes: 3, RR: rr})
		if err != nil {
			t.Fatal(err)
		}
		assertValues(t, res.Result.Values, want, 1e-9, "wp")
	}
}

func TestCCMatchesUnionFind(t *testing.T) {
	g := gen.Clustered(600, 5, 3, 11)
	want := RefCC(g)
	sym := Symmetrize(g)
	for _, rr := range []bool{false, true} {
		res, err := cluster.Execute(sym, CC(sym), cluster.Options{Nodes: 4, RR: rr})
		if err != nil {
			t.Fatal(err)
		}
		assertValues(t, res.Result.Values, want, 0, "cc")
	}
}

func TestCCDisconnected(t *testing.T) {
	// Two disjoint paths and an isolated vertex.
	g := graph.MustBuild(7, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1},
	})
	sym := Symmetrize(g)
	res, err := cluster.Execute(sym, CC(sym), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Value{0, 0, 0, 3, 3, 3, 6}
	assertValues(t, res.Result.Values, want, 0, "cc-disconnected")
}

func TestPageRankMatchesReference(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 1, 8)
	const iters = 30
	want := RefPageRank(g, iters)
	res, err := cluster.Execute(g, PageRank(iters), cluster.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := PageRankScores(g, res.Result.Values)
	assertValues(t, got, want, 1e-9, "pagerank")
}

func TestPageRankRRCloseToExact(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 1, 9)
	const iters = 60
	exact, err := cluster.Execute(g, PageRank(iters), cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := cluster.Execute(g, PageRank(iters), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	// "Finish early" freezes vertices whose value stopped changing, so the
	// result must agree with the exact run to high precision.
	a := PageRankScores(g, exact.Result.Values)
	b := PageRankScores(g, rr.Result.Values)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-4*(1+math.Abs(a[v])) {
			t.Fatalf("vertex %d: exact %v vs RR %v", v, a[v], b[v])
		}
	}
	if rr.Result.Metrics.Suppressed() == 0 {
		t.Error("RR PageRank suppressed no computations")
	}
}

func TestTunkRankRuns(t *testing.T) {
	g := gen.RMAT(512, 4096, gen.DefaultRMAT, 1, 10)
	res, err := cluster.Execute(g, TunkRank(25), cluster.Options{Nodes: 2, RR: true})
	if err != nil {
		t.Fatal(err)
	}
	scores := TunkRankScores(g, res.Result.Values)
	// Influence must be non-negative and someone must be influential.
	var max core.Value
	for _, s := range scores {
		if s < 0 {
			t.Fatal("negative influence")
		}
		if s > max {
			max = s
		}
	}
	if max == 0 {
		t.Fatal("all influence zero")
	}
}

func TestNumPathsOnDAG(t *testing.T) {
	// Diamond DAG: 0->1, 0->2, 1->3, 2->3 gives 2 paths to vertex 3.
	g := graph.MustBuild(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	})
	res, err := cluster.Execute(g, NumPaths(0, 10), cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Value{1, 1, 1, 2}
	assertValues(t, res.Result.Values, want, 0, "numpaths")
}

func TestSpMVMatchesReference(t *testing.T) {
	g := gen.Uniform(300, 1800, 8, 12)
	for _, iters := range []int{1, 3} {
		want := RefSpMV(g, iters)
		res, err := cluster.Execute(g, SpMV(iters), cluster.Options{Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertValues(t, res.Result.Values, want, 1e-6, "spmv")
	}
}

func TestHeatSimulation(t *testing.T) {
	g := Symmetrize(gen.Grid(8, 8, 1, 1))
	hot := []graph.VertexID{0}
	res, err := cluster.Execute(g, HeatSimulation(hot, 50), cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Result.Values
	if vals[0] != 100 {
		t.Fatalf("hot vertex cooled to %v", vals[0])
	}
	// Heat decreases with distance from the source.
	if !(vals[1] > vals[2*8+2]) || vals[63] <= 0 {
		t.Fatalf("heat did not diffuse sensibly: near=%v far=%v corner=%v", vals[1], vals[18], vals[63])
	}
}

func TestApproxDiameter(t *testing.T) {
	g := gen.Path(12)
	d, err := ApproxDiameter(g, []graph.VertexID{0}, cluster.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 11 {
		t.Fatalf("diameter = %d, want 11", d)
	}
}

func TestRegistryTable1(t *testing.T) {
	if len(Registry) != 13 {
		t.Fatalf("registry has %d entries, want 13 (Table 1)", len(Registry))
	}
	evaluated := 0
	for _, e := range Registry {
		if e.Evaluated {
			evaluated++
			if !e.Implemented {
				t.Errorf("%s is evaluated but not implemented", e.Name)
			}
		}
	}
	if evaluated != 5 {
		t.Errorf("%d evaluated applications, want 5", evaluated)
	}
	if e, ok := Lookup("PageRank"); !ok || e.Agg != core.Arith {
		t.Error("PageRank lookup failed or misclassified")
	}
	if e, ok := Lookup("WidestPath"); !ok || e.Agg != core.MinMax {
		t.Error("WidestPath lookup failed or misclassified")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown app")
	}
}

func TestSymmetrize(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 5}})
	s := Symmetrize(g)
	if s.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", s.NumEdges())
	}
	if s.OutDegree(1) != 1 || s.OutNeighbors(1)[0] != 0 || s.OutWeights(1)[0] != 5 {
		t.Fatal("mirror edge missing or wrong")
	}
}

// Property: SSSP with RR on random graphs equals Dijkstra, across node
// counts — the paper's Theorem 1 (delayed computation converges to the
// original output).
func TestQuickSSSPCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(250) + 2
		m := int64(rng.Intn(4*n) + n)
		g := gen.Uniform(n, m, 16, seed)
		root := graph.VertexID(rng.Intn(n))
		want := RefSSSP(g, root)
		nodes := rng.Intn(4) + 1
		res, err := cluster.Execute(g, SSSP(root), cluster.Options{Nodes: nodes, RR: true})
		if err != nil {
			return false
		}
		for v := range want {
			if !almostEqual(res.Result.Values[v], want[v], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: RR never changes CC labels.
func TestQuickCCRRInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		g := Symmetrize(gen.Uniform(n, int64(rng.Intn(3*n)), 1, seed))
		want := RefCC(g)
		res, err := cluster.Execute(g, CC(g), cluster.Options{Nodes: rng.Intn(3) + 1, RR: true})
		if err != nil {
			return false
		}
		for v := range want {
			if res.Result.Values[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: widest path with RR equals the reference.
func TestQuickWPCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		g := gen.Uniform(n, int64(rng.Intn(4*n)), 32, seed)
		root := graph.VertexID(rng.Intn(n))
		want := RefWP(g, root)
		res, err := cluster.Execute(g, WP(root), cluster.Options{Nodes: rng.Intn(3) + 1, RR: true})
		if err != nil {
			return false
		}
		for v := range want {
			if !almostEqual(res.Result.Values[v], want[v], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
