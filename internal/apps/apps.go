// Package apps implements the graph applications evaluated by the paper
// (§4.1: SSSP, ConnectedComponents, WidestPath from the min/max class;
// PageRank, TunkRank from the arithmetic class) plus the remaining Table 1
// applications that the engine supports (BFS, NumPaths, SpMV,
// HeatSimulation, ApproximateDiameter), and sequential reference
// implementations used to verify every one of them.
package apps

import (
	"math"

	"slfe/internal/cluster"
	"slfe/internal/core"
	"slfe/internal/graph"
)

// Inf is the "unreached" distance.
var Inf = math.Inf(1)

// SSSP is single-source shortest path (Algorithm 4 of the paper): min()
// aggregation over dist[src]+w.
func SSSP(root graph.VertexID) *core.Program {
	return &core.Program{
		Name: "SSSP",
		Agg:  core.MinMax,
		InitValue: func(_ *graph.Graph, v graph.VertexID) core.Value {
			if v == root {
				return 0
			}
			return Inf
		},
		Roots:  []graph.VertexID{root},
		Relax:  func(src core.Value, w float32) core.Value { return src + float64(w) },
		Better: func(a, b core.Value) bool { return a < b },
	}
}

// BFS is breadth-first level assignment: SSSP with unit edge weights.
func BFS(root graph.VertexID) *core.Program {
	p := SSSP(root)
	p.Name = "BFS"
	p.Relax = func(src core.Value, _ float32) core.Value { return src + 1 }
	return p
}

// CC is connected components by min-label propagation. It must run on a
// symmetrised graph (use Symmetrize) so labels flow against edge
// directions, yielding weakly connected components.
func CC(g *graph.Graph) *core.Program {
	n := g.NumVertices()
	roots := make([]graph.VertexID, n)
	for v := range roots {
		roots[v] = graph.VertexID(v)
	}
	return &core.Program{
		Name: "CC",
		Agg:  core.MinMax,
		InitValue: func(_ *graph.Graph, v graph.VertexID) core.Value {
			return float64(v)
		},
		Roots:  roots,
		Relax:  func(src core.Value, _ float32) core.Value { return src },
		Better: func(a, b core.Value) bool { return a < b },
	}
}

// WP is widest path (maximum bottleneck capacity) from root: max()
// aggregation over min(width[src], w).
func WP(root graph.VertexID) *core.Program {
	return &core.Program{
		Name: "WP",
		Agg:  core.MinMax,
		InitValue: func(_ *graph.Graph, v graph.VertexID) core.Value {
			if v == root {
				return Inf
			}
			return 0
		},
		Roots: []graph.VertexID{root},
		Relax: func(src core.Value, w float32) core.Value {
			return math.Min(src, float64(w))
		},
		Better: func(a, b core.Value) bool { return a > b },
	}
}

// PageRank follows Algorithm 5: rank = 0.15 + 0.85*sum(contributions); the
// stored property is the *contribution* rank/outdeg (rank itself for
// dangling vertices). Use PageRankScores to recover ranks.
func PageRank(iters int) *core.Program {
	return &core.Program{
		Name: "PR",
		Agg:  core.Arith,
		InitValue: func(g *graph.Graph, v graph.VertexID) core.Value {
			if d := g.OutDegree(v); d > 0 {
				return 1.0 / float64(d)
			}
			return 1.0
		},
		GatherInit: 0,
		Gather: func(acc core.Value, src core.Value, _ float32) core.Value {
			return acc + src
		},
		Apply: func(g *graph.Graph, v graph.VertexID, acc, _ core.Value) core.Value {
			rank := 0.15 + 0.85*acc
			if d := g.OutDegree(v); d > 0 {
				return rank / float64(d)
			}
			return rank
		},
		MaxIters:  iters,
		StableEps: 1e-7,
	}
}

// PageRankScores converts stored contributions back to ranks.
func PageRankScores(g *graph.Graph, contribs []core.Value) []core.Value {
	ranks := make([]core.Value, len(contribs))
	for v := range contribs {
		if d := g.OutDegree(graph.VertexID(v)); d > 0 {
			ranks[v] = contribs[v] * float64(d)
		} else {
			ranks[v] = contribs[v]
		}
	}
	return ranks
}

// TunkRankP is the retweet probability of TunkRank.
const TunkRankP = 0.5

// TunkRank estimates Twitter-style influence: I(v) = sum over followers u
// of (1 + p*I(u))/following(u). Followers are modelled as in-neighbours.
// The stored property is the contribution (1+p*I(v))/outdeg(v); use
// TunkRankScores to recover influence.
func TunkRank(iters int) *core.Program {
	return &core.Program{
		Name: "TR",
		Agg:  core.Arith,
		InitValue: func(g *graph.Graph, v graph.VertexID) core.Value {
			if d := g.OutDegree(v); d > 0 {
				return 1.0 / float64(d)
			}
			return 1.0
		},
		GatherInit: 0,
		Gather: func(acc core.Value, src core.Value, _ float32) core.Value {
			return acc + src
		},
		Apply: func(g *graph.Graph, v graph.VertexID, acc, _ core.Value) core.Value {
			contrib := 1 + TunkRankP*acc
			if d := g.OutDegree(v); d > 0 {
				return contrib / float64(d)
			}
			return contrib
		},
		MaxIters:  iters,
		StableEps: 1e-7,
	}
}

// TunkRankScores recovers influence values from stored contributions: the
// influence of v is the gather over its in-edges.
func TunkRankScores(g *graph.Graph, contribs []core.Value) []core.Value {
	infl := make([]core.Value, len(contribs))
	for v := range infl {
		var acc core.Value
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			acc += contribs[u]
		}
		infl[v] = acc
	}
	return infl
}

// NumPaths counts distinct paths from root (meaningful on DAGs; bounded by
// iters elsewhere).
func NumPaths(root graph.VertexID, iters int) *core.Program {
	return &core.Program{
		Name: "NumPaths",
		Agg:  core.Arith,
		InitValue: func(_ *graph.Graph, v graph.VertexID) core.Value {
			if v == root {
				return 1
			}
			return 0
		},
		GatherInit: 0,
		Gather: func(acc core.Value, src core.Value, _ float32) core.Value {
			return acc + src
		},
		Apply: func(_ *graph.Graph, v graph.VertexID, acc, _ core.Value) core.Value {
			if v == root {
				return 1
			}
			return acc
		},
		MaxIters: iters,
	}
}

// SpMV iterates y = A^T x (weighted gather over in-edges) for iters rounds;
// with iters=1 it is one sparse matrix-vector product.
func SpMV(iters int) *core.Program {
	return &core.Program{
		Name: "SpMV",
		Agg:  core.Arith,
		InitValue: func(_ *graph.Graph, _ graph.VertexID) core.Value {
			return 1
		},
		GatherInit: 0,
		Gather: func(acc core.Value, src core.Value, w float32) core.Value {
			return acc + src*float64(w)
		},
		Apply: func(_ *graph.Graph, _ graph.VertexID, acc, _ core.Value) core.Value {
			return acc
		},
		MaxIters: iters,
	}
}

// HeatAlpha is the diffusion coefficient of HeatSimulation.
const HeatAlpha = 0.2

// HeatSimulation diffuses heat: h'(v) = (1-alpha)*h(v) + alpha*mean of
// in-neighbour heat. Sources (hot vertices) are set via init temperatures.
func HeatSimulation(hot []graph.VertexID, iters int) *core.Program {
	hotSet := make(map[graph.VertexID]bool, len(hot))
	for _, v := range hot {
		hotSet[v] = true
	}
	return &core.Program{
		Name: "HeatSim",
		Agg:  core.Arith,
		InitValue: func(_ *graph.Graph, v graph.VertexID) core.Value {
			if hotSet[v] {
				return 100
			}
			return 0
		},
		GatherInit: 0,
		Gather: func(acc core.Value, src core.Value, _ float32) core.Value {
			return acc + src
		},
		Apply: func(g *graph.Graph, v graph.VertexID, acc, prev core.Value) core.Value {
			if hotSet[v] {
				return prev // heat sources stay clamped
			}
			d := g.InDegree(v)
			if d == 0 {
				return prev
			}
			return (1-HeatAlpha)*prev + HeatAlpha*acc/float64(d)
		},
		MaxIters: iters,
	}
}

// Symmetrize returns a graph with every edge mirrored (needed by CC to find
// weakly connected components on directed inputs).
func Symmetrize(g *graph.Graph) *graph.Graph {
	edges := g.Edges(nil)
	mirrored := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		mirrored = append(mirrored, e, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return graph.MustBuild(g.NumVertices(), mirrored)
}

// ApproxDiameter estimates the diameter by running BFS from sample roots
// and taking the deepest level observed (a standard lower-bound estimator).
// It exercises the engine's min/max path end to end.
func ApproxDiameter(g *graph.Graph, samples []graph.VertexID, opt cluster.Options) (int, error) {
	best := 0
	for _, root := range samples {
		res, err := cluster.Execute(g, BFS(root), opt)
		if err != nil {
			return 0, err
		}
		for _, d := range res.Result.Values {
			if !math.IsInf(d, 1) && int(d) > best {
				best = int(d)
			}
		}
	}
	return best, nil
}
