// Package apps implements the graph applications evaluated by the paper
// (§4.1: SSSP, ConnectedComponents, WidestPath from the min/max class;
// PageRank, TunkRank from the arithmetic class) plus the remaining Table 1
// applications that the engine supports (BFS, NumPaths, SpMV,
// HeatSimulation, ApproximateDiameter), and sequential reference
// implementations used to verify every one of them.
//
// Every program is generic over its value domain where the arithmetic
// allows it: the *In constructors build a program for any float property
// type (F64 keeps the original behaviour and serves as the differential
// oracle; F32 is the paper-faithful half-width domain of §2.2), the plain
// constructors are the float64 instantiations, the *F32 wrappers the
// float32 ones, and the label-style applications additionally ship exact
// U32 integer variants. SSSPTree demonstrates a composite domain: distance
// plus predecessor in one wire word, yielding an actual shortest-path
// tree.
package apps

import (
	"math"

	"slfe/internal/cluster"
	"slfe/internal/core"
	"slfe/internal/graph"
)

// Inf is the "unreached" distance.
var Inf = math.Inf(1)

// SSSPIn is single-source shortest path (Algorithm 4 of the paper) over
// any float domain: min() aggregation over dist[src]+w.
func SSSPIn[V core.Float](root graph.VertexID) *core.Program[V] {
	return &core.Program[V]{
		Name: "SSSP",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) V {
			if v == root {
				return 0
			}
			return V(Inf)
		},
		Roots:  []graph.VertexID{root},
		Relax:  func(src V, w float32) V { return src + V(w) },
		Better: func(a, b V) bool { return a < b },
	}
}

// SSSP is the float64 instantiation of SSSPIn.
func SSSP(root graph.VertexID) *core.Program[float64] { return SSSPIn[float64](root) }

// SSSPF32 is the paper-faithful float32 instantiation of SSSPIn.
func SSSPF32(root graph.VertexID) *core.Program[float32] { return SSSPIn[float32](root) }

// BFSIn is breadth-first level assignment: SSSP with unit edge weights.
func BFSIn[V core.Float](root graph.VertexID) *core.Program[V] {
	p := SSSPIn[V](root)
	p.Name = "BFS"
	p.Relax = func(src V, _ float32) V { return src + 1 }
	return p
}

// BFS is the float64 instantiation of BFSIn.
func BFS(root graph.VertexID) *core.Program[float64] { return BFSIn[float64](root) }

// BFSF32 is the float32 instantiation of BFSIn.
func BFSF32(root graph.VertexID) *core.Program[float32] { return BFSIn[float32](root) }

// BFSU32 assigns BFS levels as exact uint32 integers (core.U32Unreached is
// the "not reached" sentinel). The relaxation saturates so a catch-up scan
// pulling an unreached in-neighbour cannot wrap the sentinel around to a
// winning level.
func BFSU32(root graph.VertexID) *core.Program[uint32] {
	return &core.Program[uint32]{
		Name: "BFS",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) uint32 {
			if v == root {
				return 0
			}
			return core.U32Unreached
		},
		Roots: []graph.VertexID{root},
		Relax: func(src uint32, _ float32) uint32 {
			if src >= core.U32Unreached-1 {
				return core.U32Unreached
			}
			return src + 1
		},
		Better: func(a, b uint32) bool { return a < b },
	}
}

// CCIn is connected components by min-label propagation over any float
// domain. It must run on a symmetrised graph (use Symmetrize) so labels
// flow against edge directions, yielding weakly connected components.
// Float labels are exact only below 2^24 vertices (the float32 integer
// range); CCU32 is the exact variant at any scale.
func CCIn[V core.Float](g graph.View) *core.Program[V] {
	n := g.NumVertices()
	roots := make([]graph.VertexID, n)
	for v := range roots {
		roots[v] = graph.VertexID(v)
	}
	return &core.Program[V]{
		Name: "CC",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) V {
			return V(v)
		},
		Roots:  roots,
		Relax:  func(src V, _ float32) V { return src },
		Better: func(a, b V) bool { return a < b },
	}
}

// CC is the float64 instantiation of CCIn.
func CC(g graph.View) *core.Program[float64] { return CCIn[float64](g) }

// CCF32 is the float32 instantiation of CCIn (labels exact below 2^24
// vertices).
func CCF32(g graph.View) *core.Program[float32] { return CCIn[float32](g) }

// CCU32 propagates exact uint32 component labels — the natural integer
// domain for CC: no rounding at any graph scale and varint-friendly wire
// words.
func CCU32(g graph.View) *core.Program[uint32] {
	n := g.NumVertices()
	roots := make([]graph.VertexID, n)
	for v := range roots {
		roots[v] = graph.VertexID(v)
	}
	return &core.Program[uint32]{
		Name: "CC",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) uint32 {
			return uint32(v)
		},
		Roots:  roots,
		Relax:  func(src uint32, _ float32) uint32 { return src },
		Better: func(a, b uint32) bool { return a < b },
	}
}

// WPIn is widest path (maximum bottleneck capacity) from root: max()
// aggregation over min(width[src], w).
func WPIn[V core.Float](root graph.VertexID) *core.Program[V] {
	return &core.Program[V]{
		Name: "WP",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) V {
			if v == root {
				return V(Inf)
			}
			return 0
		},
		Roots: []graph.VertexID{root},
		Relax: func(src V, w float32) V {
			if mw := V(w); mw < src {
				return mw
			}
			return src
		},
		Better: func(a, b V) bool { return a > b },
	}
}

// WP is the float64 instantiation of WPIn.
func WP(root graph.VertexID) *core.Program[float64] { return WPIn[float64](root) }

// WPF32 is the float32 instantiation of WPIn. Edge weights are float32
// already, so the bottleneck arithmetic is exact in both domains.
func WPF32(root graph.VertexID) *core.Program[float32] { return WPIn[float32](root) }

// isF64 reports whether the program's property type is float64 (the only
// domain whose arith programs need a StableEps tolerance; see
// Program.StableEps).
func isF64[V core.Float]() bool {
	var zero V
	_, ok := any(zero).(float64)
	return ok
}

// stableEpsFor returns the Algorithm 5 stability tolerance for the domain:
// 0 (exact equality, §2.2's hardware-precision rule) everywhere except
// float64, whose 52-bit mantissa keeps twitching in the last ulps long
// after the ranks are stable.
func stableEpsFor[V core.Float]() float64 {
	if isF64[V]() {
		return 1e-7
	}
	return 0
}

// PageRankIn follows Algorithm 5: rank = 0.15 + 0.85*sum(contributions);
// the stored property is the *contribution* rank/outdeg (rank itself for
// dangling vertices). Use PageRankScoresIn to recover ranks. Over float32
// the stability test is exact equality — the paper-faithful §2.2 rule —
// because float32 rounding saturates once ranks stop moving.
func PageRankIn[V core.Float](iters int) *core.Program[V] {
	return &core.Program[V]{
		Name: "PR",
		Agg:  core.Arith,
		InitValue: func(g graph.View, v graph.VertexID) V {
			if d := g.OutDegree(v); d > 0 {
				return 1.0 / V(d)
			}
			return 1.0
		},
		GatherInit: 0,
		Gather: func(acc V, src V, _ float32) V {
			return acc + src
		},
		Apply: func(g graph.View, v graph.VertexID, acc, _ V) V {
			rank := V(0.15) + V(0.85)*acc
			if d := g.OutDegree(v); d > 0 {
				return rank / V(d)
			}
			return rank
		},
		MaxIters:  iters,
		StableEps: stableEpsFor[V](),
	}
}

// PageRank is the float64 instantiation of PageRankIn.
func PageRank(iters int) *core.Program[float64] { return PageRankIn[float64](iters) }

// PageRankF32 is the float32 instantiation of PageRankIn.
func PageRankF32(iters int) *core.Program[float32] { return PageRankIn[float32](iters) }

// PageRankScoresIn converts stored contributions back to ranks.
func PageRankScoresIn[V core.Float](g graph.View, contribs []V) []V {
	ranks := make([]V, len(contribs))
	for v := range contribs {
		if d := g.OutDegree(graph.VertexID(v)); d > 0 {
			ranks[v] = contribs[v] * V(d)
		} else {
			ranks[v] = contribs[v]
		}
	}
	return ranks
}

// PageRankScores is the float64 instantiation of PageRankScoresIn.
func PageRankScores(g graph.View, contribs []float64) []float64 {
	return PageRankScoresIn(g, contribs)
}

// TunkRankP is the retweet probability of TunkRank.
const TunkRankP = 0.5

// TunkRankIn estimates Twitter-style influence: I(v) = sum over followers
// u of (1 + p*I(u))/following(u). Followers are modelled as in-neighbours.
// The stored property is the contribution (1+p*I(v))/outdeg(v); use
// TunkRankScoresIn to recover influence.
func TunkRankIn[V core.Float](iters int) *core.Program[V] {
	return &core.Program[V]{
		Name: "TR",
		Agg:  core.Arith,
		InitValue: func(g graph.View, v graph.VertexID) V {
			if d := g.OutDegree(v); d > 0 {
				return 1.0 / V(d)
			}
			return 1.0
		},
		GatherInit: 0,
		Gather: func(acc V, src V, _ float32) V {
			return acc + src
		},
		Apply: func(g graph.View, v graph.VertexID, acc, _ V) V {
			contrib := 1 + V(TunkRankP)*acc
			if d := g.OutDegree(v); d > 0 {
				return contrib / V(d)
			}
			return contrib
		},
		MaxIters:  iters,
		StableEps: stableEpsFor[V](),
	}
}

// TunkRank is the float64 instantiation of TunkRankIn.
func TunkRank(iters int) *core.Program[float64] { return TunkRankIn[float64](iters) }

// TunkRankF32 is the float32 instantiation of TunkRankIn.
func TunkRankF32(iters int) *core.Program[float32] { return TunkRankIn[float32](iters) }

// TunkRankScoresIn recovers influence values from stored contributions:
// the influence of v is the gather over its in-edges.
func TunkRankScoresIn[V core.Float](g graph.View, contribs []V) []V {
	infl := make([]V, len(contribs))
	for v := range infl {
		var acc V
		for _, u := range g.InNeighbors(graph.VertexID(v)) {
			acc += contribs[u]
		}
		infl[v] = acc
	}
	return infl
}

// TunkRankScores is the float64 instantiation of TunkRankScoresIn.
func TunkRankScores(g graph.View, contribs []float64) []float64 {
	return TunkRankScoresIn(g, contribs)
}

// NumPathsIn counts distinct paths from root (meaningful on DAGs; bounded
// by iters elsewhere).
func NumPathsIn[V core.Float](root graph.VertexID, iters int) *core.Program[V] {
	return &core.Program[V]{
		Name: "NumPaths",
		Agg:  core.Arith,
		InitValue: func(_ graph.View, v graph.VertexID) V {
			if v == root {
				return 1
			}
			return 0
		},
		GatherInit: 0,
		Gather: func(acc V, src V, _ float32) V {
			return acc + src
		},
		Apply: func(_ graph.View, v graph.VertexID, acc, _ V) V {
			if v == root {
				return 1
			}
			return acc
		},
		MaxIters: iters,
	}
}

// NumPaths is the float64 instantiation of NumPathsIn.
func NumPaths(root graph.VertexID, iters int) *core.Program[float64] {
	return NumPathsIn[float64](root, iters)
}

// NumPathsF32 is the float32 instantiation of NumPathsIn.
func NumPathsF32(root graph.VertexID, iters int) *core.Program[float32] {
	return NumPathsIn[float32](root, iters)
}

// NumPathsU32 counts paths as exact uint32 integers — no float rounding on
// large counts (counts above 2^32-1 wrap modulo 2^32; floats would lose
// precision silently at 2^24/2^53 instead).
func NumPathsU32(root graph.VertexID, iters int) *core.Program[uint32] {
	return &core.Program[uint32]{
		Name: "NumPaths",
		Agg:  core.Arith,
		InitValue: func(_ graph.View, v graph.VertexID) uint32 {
			if v == root {
				return 1
			}
			return 0
		},
		GatherInit: 0,
		Gather: func(acc uint32, src uint32, _ float32) uint32 {
			return acc + src
		},
		Apply: func(_ graph.View, v graph.VertexID, acc, _ uint32) uint32 {
			if v == root {
				return 1
			}
			return acc
		},
		MaxIters: iters,
	}
}

// SpMVIn iterates y = A^T x (weighted gather over in-edges) for iters
// rounds; with iters=1 it is one sparse matrix-vector product.
func SpMVIn[V core.Float](iters int) *core.Program[V] {
	return &core.Program[V]{
		Name: "SpMV",
		Agg:  core.Arith,
		InitValue: func(_ graph.View, _ graph.VertexID) V {
			return 1
		},
		GatherInit: 0,
		Gather: func(acc V, src V, w float32) V {
			return acc + src*V(w)
		},
		Apply: func(_ graph.View, _ graph.VertexID, acc, _ V) V {
			return acc
		},
		MaxIters: iters,
	}
}

// SpMV is the float64 instantiation of SpMVIn.
func SpMV(iters int) *core.Program[float64] { return SpMVIn[float64](iters) }

// SpMVF32 is the float32 instantiation of SpMVIn.
func SpMVF32(iters int) *core.Program[float32] { return SpMVIn[float32](iters) }

// SSSPTree is SSSP over the composite DistParent domain: each vertex
// carries (distance, predecessor) in one 8-byte wire word, so the run
// yields an actual shortest-path tree instead of bare distances. The
// edge-aware RelaxE records the proposing source as the parent, and Better
// breaks distance ties on the lower parent id — a strict total order, so
// results are deterministic across schedules, strategies and transports.
func SSSPTree(root graph.VertexID) *core.Program[core.DistParent] {
	return &core.Program[core.DistParent]{
		Name: "SSSPTree",
		Agg:  core.MinMax,
		InitValue: func(_ graph.View, v graph.VertexID) core.DistParent {
			if v == root {
				return core.DistParent{Dist: 0, Parent: core.NoParent}
			}
			return core.DistParent{Dist: float32(math.Inf(1)), Parent: core.NoParent}
		},
		Roots: []graph.VertexID{root},
		RelaxE: func(src graph.VertexID, srcVal core.DistParent, w float32) core.DistParent {
			if math.IsInf(float64(srcVal.Dist), 1) {
				// An unreached source proposes nothing: returning a
				// parented +Inf would let the tie-break below adopt it.
				return core.DistParent{Dist: srcVal.Dist, Parent: core.NoParent}
			}
			return core.DistParent{Dist: srcVal.Dist + w, Parent: src}
		},
		Better: func(a, b core.DistParent) bool {
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			if math.IsInf(float64(a.Dist), 1) {
				// All unreached values are equivalent: without this guard a
				// full-in-edge relaxation sweep (the RR catch-up scan, a
				// rebalance acquisition) would hand unreached vertices
				// arbitrary — even mutually cyclic — parents through the
				// parent tie-break, breaking the "unreached means NoParent"
				// invariant.
				return false
			}
			return a.Parent < b.Parent
		},
	}
}

// HeatAlpha is the diffusion coefficient of HeatSimulation.
const HeatAlpha = 0.2

// HeatSimulation diffuses heat: h'(v) = (1-alpha)*h(v) + alpha*mean of
// in-neighbour heat. Sources (hot vertices) are set via init temperatures.
func HeatSimulation(hot []graph.VertexID, iters int) *core.Program[float64] {
	hotSet := make(map[graph.VertexID]bool, len(hot))
	for _, v := range hot {
		hotSet[v] = true
	}
	return &core.Program[float64]{
		Name: "HeatSim",
		Agg:  core.Arith,
		InitValue: func(_ graph.View, v graph.VertexID) float64 {
			if hotSet[v] {
				return 100
			}
			return 0
		},
		GatherInit: 0,
		Gather: func(acc float64, src float64, _ float32) float64 {
			return acc + src
		},
		Apply: func(g graph.View, v graph.VertexID, acc, prev float64) float64 {
			if hotSet[v] {
				return prev // heat sources stay clamped
			}
			d := g.InDegree(v)
			if d == 0 {
				return prev
			}
			return (1-HeatAlpha)*prev + HeatAlpha*acc/float64(d)
		},
		MaxIters: iters,
	}
}

// Symmetrize returns a graph with every edge mirrored (needed by CC to find
// weakly connected components on directed inputs).
func Symmetrize(g graph.View) *graph.Graph {
	edges := graph.CollectEdges(g, nil)
	mirrored := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		mirrored = append(mirrored, e, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return graph.MustBuild(g.NumVertices(), mirrored)
}

// ApproxDiameter estimates the diameter by running BFS from sample roots
// and taking the deepest level observed (a standard lower-bound estimator).
// It exercises the engine's min/max path end to end.
func ApproxDiameter(g graph.View, samples []graph.VertexID, opt cluster.Options) (int, error) {
	best := 0
	for _, root := range samples {
		res, err := cluster.Execute(g, BFS(root), opt)
		if err != nil {
			return 0, err
		}
		for _, d := range res.Result.Values {
			if !math.IsInf(d, 1) && int(d) > best {
				best = int(d)
			}
		}
	}
	return best, nil
}
