package ckpt

import (
	"errors"
	"fmt"
)

// Merge folds one epoch's shards into a single global restore state. The
// shards must all come from the same checkpoint — same program, kind,
// iteration, domain, width and partition bounds — and cover every rank of
// the writing epoch exactly once; any shard may be an original or a buddy
// replica (they are byte-identical). The output carries no Rank/Bounds:
// it is epoch-agnostic and can seed a run on any new membership.
//
// Per-vertex state (Values, StableCnt, StableVal) is taken from each
// vertex's owner, because under sparse delta-sync only the owner's copy is
// authoritative. The bit sets are unioned: every owner holds its own
// changed-frontier bits, so the frontier union is exactly the global
// changed set, while caughtup/debt/sparsedirty are owned-range state and
// are restricted to each shard's range before the union.
func Merge(shards []*State) (*State, error) {
	if len(shards) == 0 {
		return nil, errors.New("ckpt: merge of no shards")
	}
	ref := shards[0]
	if len(ref.Bounds) < 2 {
		return nil, errors.New("ckpt: merge needs bounds-tagged (v3) shards")
	}
	workers := len(ref.Bounds) - 1
	if len(shards) != workers {
		return nil, fmt.Errorf("ckpt: %d shards for %d-rank bounds", len(shards), workers)
	}
	n := len(ref.Values)
	if int(ref.Bounds[workers]) != n {
		return nil, fmt.Errorf("ckpt: bounds end at %d, values hold %d", ref.Bounds[workers], n)
	}
	out := &State{
		Program: ref.Program,
		Kind:    ref.Kind,
		Iter:    ref.Iter,
		Domain:  ref.Domain,
		Width:   ref.Width,
		Values:  make([]uint64, n),
	}
	if len(ref.StableCnt) > 0 {
		out.StableCnt = make([]uint32, n)
		out.StableVal = make([]uint64, n)
	}
	seen := make([]bool, workers)
	union := make(map[string][]bool)
	for _, s := range shards {
		if s.Program != ref.Program || s.Kind != ref.Kind || s.Iter != ref.Iter ||
			s.Domain != ref.Domain || s.Width != ref.Width {
			return nil, fmt.Errorf("ckpt: shard from rank %d disagrees with rank %d on checkpoint identity", s.Rank, ref.Rank)
		}
		if !equalBounds(s.Bounds, ref.Bounds) {
			return nil, fmt.Errorf("ckpt: shard from rank %d has different bounds", s.Rank)
		}
		r := int(s.Rank)
		if r < 0 || r >= workers {
			return nil, fmt.Errorf("ckpt: shard rank %d outside bounds for %d workers", r, workers)
		}
		if seen[r] {
			return nil, fmt.Errorf("ckpt: duplicate shard for rank %d", r)
		}
		seen[r] = true
		if len(s.Values) != n {
			return nil, fmt.Errorf("ckpt: shard from rank %d holds %d values, want %d", r, len(s.Values), n)
		}
		lo, hi := s.Bounds[r], s.Bounds[r+1]
		copy(out.Values[lo:hi], s.Values[lo:hi])
		if out.StableCnt != nil {
			if len(s.StableCnt) != n || len(s.StableVal) != n {
				return nil, fmt.Errorf("ckpt: shard from rank %d has truncated stable arrays", r)
			}
			copy(out.StableCnt[lo:hi], s.StableCnt[lo:hi])
			copy(out.StableVal[lo:hi], s.StableVal[lo:hi])
		}
		for key, ids := range s.Sets {
			b := union[key]
			if b == nil {
				b = make([]bool, n)
				union[key] = b
			}
			ownedOnly := key != "frontier"
			for _, id := range ids {
				if int(id) >= n {
					return nil, fmt.Errorf("ckpt: shard from rank %d: set %q id %d out of range", r, key, id)
				}
				if ownedOnly && (id < lo || id >= hi) {
					continue
				}
				b[id] = true
			}
		}
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("ckpt: merge missing rank %d's shard", r)
		}
	}
	if len(union) > 0 {
		out.Sets = make(map[string][]uint32, len(union))
		for key, b := range union {
			var ids []uint32
			for i, set := range b {
				if set {
					ids = append(ids, uint32(i))
				}
			}
			out.Sets[key] = ids
		}
	}
	return out, nil
}

func equalBounds(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
