package ckpt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestStateV3RankBoundsRoundTrip(t *testing.T) {
	s := sampleState()
	s.Rank = 2
	s.Bounds = []uint32{0, 1, 3, 4}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 2 {
		t.Errorf("Rank = %d, want 2", got.Rank)
	}
	if len(got.Bounds) != 4 || got.Bounds[2] != 3 {
		t.Errorf("Bounds = %v", got.Bounds)
	}
}

// TestReadStateAcceptsV2 pins backward compatibility: a hand-built v2
// frame (no rank/bounds fields) must still load, with zero Rank and nil
// Bounds.
func TestReadStateAcceptsV2(t *testing.T) {
	s := sampleState()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := buf.Bytes()
	// Rewrite the frame as v2 by patching the version and splicing out the
	// 4-byte rank + 8-byte bounds length (sampleState has no bounds), then
	// recomputing the CRC (helpers from the corruption test path).
	body := append([]byte(nil), v3[:len(v3)-4]...)
	body[4] = 2 // version u16 low byte, little-endian
	cut := 4 + 2 + 4 + len(s.Program) + 1 + 4 + 4 + len(s.Domain) + 1
	body = append(body[:cut], body[cut+4+8:]...)
	framed := appendCRC(body)
	got, err := ReadState(bytes.NewReader(framed))
	if err != nil {
		t.Fatalf("v2 frame rejected: %v", err)
	}
	if got.Rank != 0 || got.Bounds != nil {
		t.Errorf("v2 frame yielded Rank=%d Bounds=%v, want zero values", got.Rank, got.Bounds)
	}
	if got.Program != s.Program || len(got.Values) != len(s.Values) {
		t.Errorf("v2 payload mangled: %+v", got)
	}
}

func appendCRC(body []byte) []byte {
	out := append([]byte(nil), body...)
	sum := crc32.ChecksumIEEE(out)
	return append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func TestSaveSyncErrorLeavesNoShard(t *testing.T) {
	boom := errors.New("injected disk failure")
	cases := []struct {
		name string
		set  func()
	}{
		{"file sync fails", func() { syncFile = func(*os.File) error { return boom } }},
		{"dir sync fails", func() { syncDir = func(string) error { return boom } }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			origFile, origDir := syncFile, syncDir
			defer func() { syncFile, syncDir = origFile, origDir }()
			tc.set()
			m := &Manager{Dir: filepath.Join(t.TempDir(), "ck")}
			err := m.Save(0, sampleState())
			if !errors.Is(err, boom) {
				t.Fatalf("Save err = %v, want injected failure", err)
			}
			// The file-sync failure must not surface a shard file; the
			// dir-sync failure happens after the rename, so the shard may
			// exist but the error must still be reported (callers treat the
			// checkpoint as not taken and will retry next interval).
			if tc.name == "file sync fails" {
				if _, statErr := os.Stat(m.shardPath(7, 0)); !errors.Is(statErr, os.ErrNotExist) {
					t.Errorf("shard file exists after failed sync (stat: %v)", statErr)
				}
			}
			// No temp litter either way.
			entries, _ := os.ReadDir(m.Dir)
			for _, e := range entries {
				if e.Name()[0] == '.' {
					t.Errorf("temp file %q left behind", e.Name())
				}
			}
		})
	}
}

func TestSaveReplicaAndStates(t *testing.T) {
	m := &Manager{Dir: filepath.Join(t.TempDir(), "ck")}
	own := sampleState()
	own.Rank = 0
	own.Bounds = []uint32{0, 2, 4}
	if err := m.Save(0, own); err != nil {
		t.Fatal(err)
	}
	buddy := sampleState()
	buddy.Rank = 1
	buddy.Bounds = []uint32{0, 2, 4}
	var blob bytes.Buffer
	if _, err := buddy.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveReplica(blob.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Corrupt replica payloads are rejected before anything hits disk.
	if err := m.SaveReplica([]byte("garbage")); err == nil {
		t.Error("corrupt replica accepted")
	}
	stored, err := m.States()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Fatalf("States returned %d entries, want 2", len(stored))
	}
	byRank := map[uint32]Stored{}
	for _, st := range stored {
		byRank[st.State.Rank] = st
	}
	if st := byRank[0]; st.Replica || st.State == nil {
		t.Errorf("rank 0 shard: %+v, want own (non-replica)", st)
	}
	if st := byRank[1]; !st.Replica {
		t.Errorf("rank 1 shard not marked replica: %+v", st)
	}
	// Replicas must not count toward complete local checkpoints.
	if got, err := m.LatestComplete(2); err != nil || got != -1 {
		t.Errorf("LatestComplete = %d, %v; replicas must not count", got, err)
	}
}
