package ckpt

import (
	"strings"
	"testing"
)

// mergeShard builds a shard for rank r of a 2-worker epoch over 4 vertices
// with bounds [0,2,4]. Values are rank-stamped so the test can verify which
// shard each vertex's merged value came from.
func mergeShard(r uint32) *State {
	s := &State{
		Program: "SSSP",
		Kind:    MinMax,
		Iter:    5,
		Domain:  "f64",
		Width:   8,
		Rank:    r,
		Bounds:  []uint32{0, 2, 4},
		Values:  make([]uint64, 4),
	}
	for i := range s.Values {
		s.Values[i] = uint64(r)*100 + uint64(i)
	}
	return s
}

func TestMergeTakesOwnerValuesAndUnionsSets(t *testing.T) {
	a, b := mergeShard(0), mergeShard(1)
	// Frontier bits are global knowledge (each owner holds its own changed
	// bits); caughtup is owned-range state, so rank 0's stale bit about
	// vertex 3 (owned by rank 1) must be discarded.
	a.Sets = map[string][]uint32{"frontier": {0, 3}, "caughtup": {1, 3}}
	b.Sets = map[string][]uint32{"frontier": {2}, "caughtup": {2}}
	got, err := Merge([]*State{b, a}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 102, 103} // rank 0 owns [0,2), rank 1 owns [2,4)
	for i, w := range want {
		if got.Values[i] != w {
			t.Errorf("Values[%d] = %d, want %d", i, got.Values[i], w)
		}
	}
	if f := got.Sets["frontier"]; len(f) != 3 || f[0] != 0 || f[1] != 2 || f[2] != 3 {
		t.Errorf("frontier = %v, want [0 2 3]", f)
	}
	if c := got.Sets["caughtup"]; len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Errorf("caughtup = %v, want [1 2] (rank 0's bit about vertex 3 dropped)", c)
	}
	if got.Rank != 0 || got.Bounds != nil {
		t.Errorf("merged state should be epoch-agnostic, got Rank=%d Bounds=%v", got.Rank, got.Bounds)
	}
	if got.Iter != 5 || got.Program != "SSSP" {
		t.Errorf("identity mangled: %+v", got)
	}
}

func TestMergeStableArrays(t *testing.T) {
	a, b := mergeShard(0), mergeShard(1)
	a.Kind, b.Kind = Arith, Arith
	a.StableCnt = []uint32{10, 11, 99, 99}
	b.StableCnt = []uint32{99, 99, 22, 23}
	a.StableVal = []uint64{1, 2, 0, 0}
	b.StableVal = []uint64{0, 0, 3, 4}
	got, err := Merge([]*State{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.StableCnt[1] != 11 || got.StableCnt[2] != 22 {
		t.Errorf("StableCnt = %v", got.StableCnt)
	}
	if got.StableVal[0] != 1 || got.StableVal[3] != 4 {
		t.Errorf("StableVal = %v", got.StableVal)
	}
}

func TestMergeRejectsBadShardSets(t *testing.T) {
	cases := []struct {
		name   string
		shards func() []*State
		msg    string
	}{
		{"empty", func() []*State { return nil }, "no shards"},
		{"missing rank", func() []*State { return []*State{mergeShard(0)} }, "1 shards"},
		{"duplicate rank", func() []*State { return []*State{mergeShard(0), mergeShard(0)} }, "duplicate"},
		{"iter mismatch", func() []*State {
			a, b := mergeShard(0), mergeShard(1)
			b.Iter = 6
			return []*State{a, b}
		}, "disagrees"},
		{"bounds mismatch", func() []*State {
			a, b := mergeShard(0), mergeShard(1)
			b.Bounds = []uint32{0, 3, 4}
			return []*State{a, b}
		}, "different bounds"},
		{"v2 shard", func() []*State {
			a, b := mergeShard(0), mergeShard(1)
			a.Bounds = nil
			return []*State{a, b}
		}, "bounds-tagged"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Merge(tc.shards())
			if err == nil || !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("err = %v, want substring %q", err, tc.msg)
			}
		})
	}
}
