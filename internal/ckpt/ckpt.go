// Package ckpt provides BSP superstep checkpointing for the SLFE engine.
// Supersteps are barrier-aligned, so a consistent global snapshot is just
// every worker's state at the same iteration: each rank writes one shard
// per checkpoint (atomic rename), and a checkpoint is complete when all
// ranks' shards for the same iteration exist. On restart the engine
// resumes from the latest complete checkpoint instead of iteration 0 —
// the standard Pregel-style fault-tolerance scheme.
//
// Shards are domain-tagged (format version 2): values are stored as the
// value domain's wire words at the domain's width, and the domain name is
// part of the frame, so a shard written by one property domain can never
// silently resume as another (the bits would be meaningless). Version-1
// shards — the pre-domain format with untagged float64 values — are
// rejected with an actionable error.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Kind distinguishes the two engine loops; a checkpoint from one loop must
// not resume the other.
type Kind uint8

// Loop kinds.
const (
	MinMax Kind = 1
	Arith  Kind = 2
)

// State is one worker's checkpoint shard.
type State struct {
	// Program is the program name, verified on resume.
	Program string
	// Kind is the loop that produced the shard.
	Kind Kind
	// Iter is the superstep the snapshot was taken after.
	Iter uint32
	// Domain names the value domain the shard was written in ("f64",
	// "f32", "u32", ...); verified on resume.
	Domain string
	// Width is the domain's wire word width in bytes (4 or 8). Values are
	// stored at this width.
	Width uint8
	// Rank is the writing worker's rank within its epoch (format v3). The
	// replication/recovery path uses it to identify a shard independent of
	// the file name it travelled under.
	Rank uint32
	// Bounds are the partition boundaries of the epoch that wrote the shard
	// (nodes+1 entries; format v3). Recovery groups shards by identical
	// bounds and folds dead ranks' ranges using them. Nil on shards read
	// from the v2 format.
	Bounds []uint32
	// Values is the (globally synchronised) property array as the
	// domain's wire words.
	Values []uint64
	// StableCnt / StableVal are the arith loop's Algorithm 5 state
	// (StableVal as wire words like Values).
	StableCnt []uint32
	StableVal []uint64
	// Sets holds the min/max loop's bitsets as sorted set-index lists
	// (keys: "frontier", "caughtup", "debt").
	Sets map[string][]uint32
}

const magic = "SLCK"

// version is the current shard format: 2 introduced domain-tagged,
// width-aware value arrays; 3 added the writing rank and the epoch's
// partition bounds, which the replication/recovery path needs to merge
// shards from a dead epoch. Version-2 shards still load (rank 0, nil
// bounds).
const version = 3

// width normalises the shard's word width (0 from a zero-value State means
// the legacy 8 bytes).
func (s *State) width() int {
	if s.Width == 4 {
		return 4
	}
	return 8
}

// WriteTo serialises the shard with a trailing CRC32.
func (s *State) WriteTo(w io.Writer) (int64, error) {
	width := s.width()
	var buf []byte
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = appendString(buf, s.Program)
	buf = append(buf, byte(s.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, s.Iter)
	buf = appendString(buf, s.Domain)
	buf = append(buf, byte(width))
	buf = binary.LittleEndian.AppendUint32(buf, s.Rank)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Bounds)))
	for _, b := range s.Bounds {
		buf = binary.LittleEndian.AppendUint32(buf, b)
	}
	buf = appendWords(buf, s.Values, width)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.StableCnt)))
	for _, c := range s.StableCnt {
		buf = binary.LittleEndian.AppendUint32(buf, c)
	}
	buf = appendWords(buf, s.StableVal, width)
	keys := make([]string, 0, len(s.Sets))
	for k := range s.Sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		ids := s.Sets[k]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint32(buf, id)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	n, err := w.Write(buf)
	return int64(n), err
}

// Encode serialises the shard to a byte slice — the WriteTo format, used
// when a state travels over a connection (replica streaming, rejoin
// redistribution) rather than to a file.
func (s *State) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeState parses a shard from a byte slice written by Encode/WriteTo.
func DecodeState(data []byte) (*State, error) {
	return ReadState(bytes.NewReader(data))
}

// appendWords writes a length-prefixed word array at the given width.
func appendWords(buf []byte, words []uint64, width int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(words)))
	for _, w := range words {
		if width == 4 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
		} else {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return buf
}

// ErrCorrupt reports a shard failing structural or checksum validation.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint shard")

// ErrUntagged reports a version-1 shard: the pre-domain format carried no
// value-domain tag, so its bits cannot be trusted to match the running
// program's domain.
var ErrUntagged = errors.New("ckpt: checkpoint shard uses the untagged version-1 format (written before value domains existed); it cannot be resumed safely — delete the checkpoint directory and re-run, or replay it with a pre-domain build")

// ReadState deserialises a shard written by WriteTo.
func ReadState(r io.Reader) (*State, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(buf) < len(magic)+2+4 {
		return nil, fmt.Errorf("%w: short file", ErrCorrupt)
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{buf: body}
	if string(d.bytes(4)) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var ver uint16
	switch v := d.u16(); v {
	case version, 2:
		ver = v
	case 1:
		return nil, ErrUntagged
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	s := &State{}
	s.Program = d.string()
	s.Kind = Kind(d.bytes(1)[0])
	s.Iter = d.u32()
	s.Domain = d.string()
	s.Width = d.bytes(1)[0]
	if s.Width != 4 && s.Width != 8 {
		return nil, fmt.Errorf("%w: value width %d", ErrCorrupt, s.Width)
	}
	width := int(s.Width)
	if ver >= 3 {
		s.Rank = d.u32()
		s.Bounds = d.u32s()
	}
	s.Values = d.words(width)
	s.StableCnt = d.u32s()
	s.StableVal = d.words(width)
	nsets := d.u32()
	if nsets > 16 {
		return nil, fmt.Errorf("%w: %d sets", ErrCorrupt, nsets)
	}
	if nsets > 0 {
		s.Sets = make(map[string][]uint32, nsets)
		for i := uint32(0); i < nsets; i++ {
			k := d.string()
			s.Sets[k] = d.ids()
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return s, nil
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.err = errors.New("truncated")
		return make([]byte, n)
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u16() uint16 { return binary.LittleEndian.Uint16(d.bytes(2)) }
func (d *decoder) u32() uint32 { return binary.LittleEndian.Uint32(d.bytes(4)) }
func (d *decoder) u64() uint64 { return binary.LittleEndian.Uint64(d.bytes(8)) }

func (d *decoder) string() string {
	n := d.u32()
	if n > 1<<16 {
		d.err = errors.New("string too long")
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *decoder) lenCapped() int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.buf)) {
		// Each element takes at least one byte of the remaining buffer.
		d.err = errors.New("length exceeds payload")
		return 0
	}
	return int(n)
}

func (d *decoder) words(width int) []uint64 {
	n := d.lenCapped()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		if width == 4 {
			out[i] = uint64(d.u32())
		} else {
			out[i] = d.u64()
		}
	}
	return out
}

func (d *decoder) u32s() []uint32 {
	n := d.lenCapped()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

func (d *decoder) ids() []uint32 { return d.u32s() }

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// Manager owns a checkpoint directory.
type Manager struct {
	// Dir is the checkpoint directory (created on first save).
	Dir string
	// Every is the checkpoint interval in supersteps (default 8).
	Every int
	// Resume makes the engine restart from the latest complete checkpoint.
	Resume bool
	// Replicate makes the engine stream every saved shard to its ring buddy
	// ((rank+1) mod size), who stores it via SaveReplica. Recovery can then
	// fetch a dead rank's shard from the buddy's directory instead of
	// requiring a shared filesystem.
	Replicate bool
}

// Interval returns the effective checkpoint interval.
func (m *Manager) Interval() int {
	if m.Every <= 0 {
		return 8
	}
	return m.Every
}

// ShouldSave reports whether a checkpoint is due after superstep iter.
func (m *Manager) ShouldSave(iter int) bool {
	every := m.Interval()
	return (iter+1)%every == 0
}

func (m *Manager) shardPath(iter uint32, rank int) string {
	return filepath.Join(m.Dir, fmt.Sprintf("ckpt-%08d-rank%03d.slck", iter, rank))
}

// Save writes rank's shard atomically and durably: temp file, fsync,
// rename, directory fsync. Without the syncs a crash shortly after Save
// could surface the renamed file empty or torn (the rename can reach disk
// before the data), which recovery would then mistake for corruption of an
// otherwise complete checkpoint.
func (m *Manager) Save(rank int, s *State) error {
	return m.writeAtomic(m.shardPath(s.Iter, rank), func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// syncFile and syncDir are indirection points so tests can inject write
// errors on the durability path.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
		return err
	}
)

// writeAtomic writes path via temp file + fsync + rename + directory fsync.
// On error no file appears at path (a stale previous version may remain).
func (m *Manager) writeAtomic(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(m.Dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(m.Dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := syncDir(m.Dir); err != nil {
		return fmt.Errorf("ckpt: sync dir: %w", err)
	}
	return nil
}

// SaveReplica stores a buddy rank's serialised shard, validating it
// (checksum and structure) before trusting anything it claims about
// itself. The replica keeps its own rank/iter identity under a distinct
// file-name prefix so LatestComplete never counts it as a local shard.
func (m *Manager) SaveReplica(data []byte) error {
	s, err := ReadState(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("ckpt: replica rejected: %w", err)
	}
	return m.writeAtomic(m.replicaPath(s.Iter, int(s.Rank)), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

func (m *Manager) replicaPath(iter uint32, rank int) string {
	return filepath.Join(m.Dir, fmt.Sprintf("replica-%08d-rank%03d.slck", iter, rank))
}

// Stored is one parsed shard file from a manager's directory.
type Stored struct {
	State *State
	// Replica marks shards received from a ring buddy rather than written
	// by this manager's own rank.
	Replica bool
}

// States parses every shard and replica in the directory, silently
// skipping unreadable or corrupt files: recovery wants whatever is still
// valid, not an error about what isn't.
func (m *Manager) States() ([]Stored, error) {
	entries, err := os.ReadDir(m.Dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Stored
	for _, e := range entries {
		name := e.Name()
		replica := strings.HasPrefix(name, "replica-")
		if !strings.HasSuffix(name, ".slck") || (!replica && !strings.HasPrefix(name, "ckpt-")) {
			continue
		}
		f, err := os.Open(filepath.Join(m.Dir, name))
		if err != nil {
			continue
		}
		s, err := ReadState(f)
		f.Close()
		if err != nil {
			continue
		}
		out = append(out, Stored{State: s, Replica: replica})
	}
	return out, nil
}

// LatestComplete returns the highest iteration for which all size ranks
// have shards, or -1 if none exists.
func (m *Manager) LatestComplete(size int) (int, error) {
	entries, err := os.ReadDir(m.Dir)
	if errors.Is(err, os.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return -1, fmt.Errorf("ckpt: %w", err)
	}
	counts := map[int]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".slck") {
			continue
		}
		parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".slck"), "-rank", 2)
		if len(parts) != 2 {
			continue
		}
		iter, err1 := strconv.Atoi(parts[0])
		_, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			continue
		}
		counts[iter]++
	}
	best := -1
	for iter, c := range counts {
		if c >= size && iter > best {
			best = iter
		}
	}
	return best, nil
}

// Load reads rank's shard for the given iteration.
func (m *Manager) Load(iter int, rank int) (*State, error) {
	f, err := os.Open(m.shardPath(uint32(iter), rank))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return ReadState(f)
}
