package ckpt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func sampleState() *State {
	return &State{
		Program:   "SSSP",
		Kind:      MinMax,
		Iter:      7,
		Domain:    "f64",
		Width:     8,
		Values:    []uint64{0, math.Float64bits(1.5), math.Float64bits(math.Inf(1)), math.Float64bits(-2)},
		StableCnt: []uint32{0, 3},
		StableVal: []uint64{math.Float64bits(0.25)},
		Sets: map[string][]uint32{
			"frontier": {1, 3},
			"debt":     {},
		},
	}
}

func TestStateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := sampleState()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != s.Program || got.Kind != s.Kind || got.Iter != s.Iter {
		t.Fatalf("header: %+v", got)
	}
	if got.Domain != "f64" || got.Width != 8 {
		t.Fatalf("domain tag: %q width %d", got.Domain, got.Width)
	}
	if len(got.Values) != 4 || !math.IsInf(math.Float64frombits(got.Values[2]), 1) {
		t.Fatalf("values: %v", got.Values)
	}
	if len(got.StableCnt) != 2 || got.StableCnt[1] != 3 {
		t.Fatalf("stableCnt: %v", got.StableCnt)
	}
	if len(got.Sets["frontier"]) != 2 || got.Sets["frontier"][1] != 3 {
		t.Fatalf("sets: %v", got.Sets)
	}
}

func TestReadStateRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleState().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Every single-byte flip must be caught by the CRC.
	for i := 0; i < len(valid); i += 7 {
		mutated := append([]byte(nil), valid...)
		mutated[i] ^= 0x5a
		if _, err := ReadState(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
	// Truncations too.
	for cut := 0; cut < len(valid); cut += 5 {
		if _, err := ReadState(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStateRoundTripProperty(t *testing.T) {
	f := func(values []uint64, cnts []uint32, iter uint32, name string) bool {
		s := &State{Program: name, Kind: Arith, Iter: iter, Domain: "f64", Width: 8, Values: values, StableCnt: cnts}
		if len(name) > 1<<15 {
			return true
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadState(&buf)
		if err != nil {
			return false
		}
		if got.Program != name || got.Iter != iter || len(got.Values) != len(values) {
			return false
		}
		for i := range values {
			if got.Values[i] != values[i] {
				return false
			}
		}
		for i := range cnts {
			if got.StableCnt[i] != cnts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestManagerSaveLoadLatest(t *testing.T) {
	m := &Manager{Dir: filepath.Join(t.TempDir(), "ck"), Every: 2}
	if got, err := m.LatestComplete(2); err != nil || got != -1 {
		t.Fatalf("empty dir: %d %v", got, err)
	}
	for _, iter := range []uint32{1, 3} {
		for rank := 0; rank < 2; rank++ {
			s := sampleState()
			s.Iter = iter
			if err := m.Save(rank, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Incomplete checkpoint at iter 5: only rank 0.
	s := sampleState()
	s.Iter = 5
	if err := m.Save(0, s); err != nil {
		t.Fatal(err)
	}
	got, err := m.LatestComplete(2)
	if err != nil || got != 3 {
		t.Fatalf("latest = %d, %v; want 3", got, err)
	}
	loaded, err := m.Load(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Iter != 3 {
		t.Fatalf("loaded iter %d", loaded.Iter)
	}
}

func TestManagerIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	m := &Manager{Dir: dir}
	for _, name := range []string{"README", "ckpt-junk.slck", "ckpt-1-rankX.slck"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := m.LatestComplete(1); err != nil || got != -1 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestShouldSave(t *testing.T) {
	m := &Manager{Every: 4}
	saves := 0
	for iter := 0; iter < 16; iter++ {
		if m.ShouldSave(iter) {
			saves++
		}
	}
	if saves != 4 {
		t.Fatalf("saves = %d, want 4", saves)
	}
	def := &Manager{}
	if def.Interval() != 8 {
		t.Fatalf("default interval %d", def.Interval())
	}
}
