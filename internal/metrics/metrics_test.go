package metrics

import (
	"testing"
	"time"
)

func TestAddAggregates(t *testing.T) {
	r := &Run{}
	r.Add(IterStat{Iter: 0, Mode: Push, Computations: 10, Updates: 2, Time: time.Millisecond})
	r.Add(IterStat{Iter: 1, Mode: Pull, Computations: 30, Updates: 5, Suppressed: 7, Time: 2 * time.Millisecond})
	if r.Computations() != 40 || r.Updates() != 7 || r.Suppressed() != 7 {
		t.Fatalf("aggregates wrong: %d %d %d", r.Computations(), r.Updates(), r.Suppressed())
	}
	if r.PushTime != time.Millisecond || r.PullTime != 2*time.Millisecond {
		t.Fatalf("time split wrong: %v %v", r.PushTime, r.PullTime)
	}
	if r.ComputeTime != 3*time.Millisecond {
		t.Fatalf("ComputeTime = %v", r.ComputeTime)
	}
}

func TestModeString(t *testing.T) {
	if Pull.String() != "pull" || Push.String() != "push" {
		t.Fatal("mode strings wrong")
	}
}

func TestMerge(t *testing.T) {
	a := &Run{}
	a.Add(IterStat{Iter: 0, Mode: Pull, Computations: 5, ActiveVerts: 10, Time: time.Millisecond})
	a.Add(IterStat{Iter: 1, Mode: Push, Computations: 2, ActiveVerts: 3, Time: time.Millisecond})
	b := &Run{}
	b.Add(IterStat{Iter: 0, Mode: Pull, Computations: 7, ActiveVerts: 10, Time: 3 * time.Millisecond})

	m := Merge([]*Run{a, b})
	if len(m.Iters) != 2 {
		t.Fatalf("merged %d iters", len(m.Iters))
	}
	if m.Iters[0].Computations != 12 {
		t.Fatalf("iter0 comps = %d", m.Iters[0].Computations)
	}
	if m.Iters[0].Time != 3*time.Millisecond {
		t.Fatalf("iter0 time = %v (want max)", m.Iters[0].Time)
	}
	if m.Iters[1].Computations != 2 {
		t.Fatalf("iter1 comps = %d", m.Iters[1].Computations)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("nil imbalance = %v", got)
	}
	if got := Imbalance([]*Run{{ComputeTime: time.Second}}); got != 0 {
		t.Fatalf("single-run imbalance = %v", got)
	}
	runs := []*Run{
		{ComputeTime: 100 * time.Millisecond},
		{ComputeTime: 50 * time.Millisecond},
	}
	if got := Imbalance(runs); got != 0.5 {
		t.Fatalf("imbalance = %v, want 0.5", got)
	}
	zero := []*Run{{}, {}}
	if got := Imbalance(zero); got != 0 {
		t.Fatalf("zero imbalance = %v", got)
	}
}

func TestMergeRebalancesTakesMax(t *testing.T) {
	// Workers rebalance in lockstep, so the cluster-wide count is the
	// maximum, not the sum.
	a := &Run{Rebalances: 3}
	b := &Run{Rebalances: 3}
	c := &Run{Rebalances: 2} // joined later via checkpoint resume
	out := Merge([]*Run{a, b, c})
	if out.Rebalances != 3 {
		t.Fatalf("merged rebalances = %d, want 3", out.Rebalances)
	}
}

func TestComputationsUpdatesSuppressedSums(t *testing.T) {
	r := &Run{}
	r.Add(IterStat{Computations: 5, Updates: 2, Suppressed: 1})
	r.Add(IterStat{Computations: 7, Updates: 3, Suppressed: 4})
	if r.Computations() != 12 || r.Updates() != 5 || r.Suppressed() != 5 {
		t.Fatalf("sums: %d %d %d", r.Computations(), r.Updates(), r.Suppressed())
	}
}
