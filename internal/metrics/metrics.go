// Package metrics collects the instrumentation the paper's evaluation
// section relies on: per-iteration computation counts (Fig. 9), pull/push
// time split (Fig. 4), value-update counts per vertex (Table 2), suppressed
// work (§4.5), and per-worker compute time for imbalance analysis
// (Fig. 10b).
package metrics

import "time"

// Mode identifies which propagation direction an iteration ran in.
type Mode int

// Propagation modes.
const (
	Pull Mode = iota
	Push
)

func (m Mode) String() string {
	if m == Push {
		return "push"
	}
	return "pull"
}

// IterStat records one superstep of one worker.
type IterStat struct {
	Iter         int
	Mode         Mode
	Computations int64 // per-edge computations executed
	Updates      int64 // vertex value changes
	Suppressed   int64 // vertex computations skipped by RR
	CatchUps     int64 // full-scan catch-up pulls (start-late repayments)
	ActiveVerts  int64 // active vertices entering the superstep (global)
	ECGlobal     int64 // early-converged vertices cluster-wide (arith + RR)
	SyncBytes    int64 // bytes this worker sent during the delta-sync phase
	SyncSparse   bool  // delta-sync ran the sparse per-peer exchange
	// ExposedComm is the delta-sync wall time left on the critical path
	// after the compute barrier: the whole sync phase when synchronising
	// serially, only the drain/decode tail when the overlapped pipeline
	// streamed deltas during compute.
	ExposedComm time.Duration
	// StreamedBytes counts the bytes this worker sent while its compute
	// phase was still running (communication hidden by overlap; zero on the
	// serial path). StreamedBytes/SyncBytes is the superstep's overlap
	// ratio.
	StreamedBytes int64
	// HeapAllocs/HeapBytes are the process-wide heap allocation deltas of
	// this superstep (stepBegin through stepEnd), recorded only under
	// core.Config.MeasureAllocs. The runtime counters are process-global,
	// so the numbers are per-worker only when one worker runs per process
	// (the hotpath experiment's single-node mode).
	HeapAllocs int64
	HeapBytes  int64
	Time       time.Duration
}

// Run aggregates a worker's whole execution.
type Run struct {
	Iters       []IterStat
	PullTime    time.Duration
	PushTime    time.Duration
	ComputeTime time.Duration // pure compute, excluding communication
	SyncTime    time.Duration // communication + barriers
	Total       time.Duration
	Steals      int64
	// Rebalances counts dynamic boundary adjustments (internal/balance).
	Rebalances int64

	// DenseSyncs and SparseSyncs count supersteps synchronised through the
	// dense AllGather and the sparse per-peer exchange; all workers move in
	// lockstep, so both are cluster-wide counts.
	DenseSyncs  int64
	SparseSyncs int64
	// OverlappedSyncs counts supersteps whose delta-sync streamed during
	// compute (the pipelined path); like the strategy counters it is a
	// lockstep, cluster-wide count.
	OverlappedSyncs int64
	// FlushBytes is this worker's share of the final consistency flush that
	// re-broadcasts values distributed only sparsely during the run.
	FlushBytes int64
	// CodecPicks counts, per codec name, how many delta batches this worker
	// encoded with it (the adaptive codec spreads over several names; a
	// fixed codec attributes every batch to its own).
	CodecPicks map[string]int64

	// Per-phase breakdown of the unified superstep pipeline
	// (internal/core/superstep.go). CommitTime is a sub-phase already
	// counted inside ComputeTime; the other three are outside it.
	FrontierTime  time.Duration // pre-compute coordination: frontier stats, mode switch, termination checks
	CommitTime    time.Duration // committing staged updates / routing push proposals
	CkptTime      time.Duration // checkpoint shard writes
	RebalanceTime time.Duration // rebalance window exchanges and boundary moves
}

// Add appends an iteration record and rolls it into the aggregates.
func (r *Run) Add(s IterStat) {
	r.Iters = append(r.Iters, s)
	if s.Mode == Pull {
		r.PullTime += s.Time
	} else {
		r.PushTime += s.Time
	}
	r.ComputeTime += s.Time
}

// Computations sums per-edge computations over all iterations.
func (r *Run) Computations() int64 {
	var total int64
	for _, s := range r.Iters {
		total += s.Computations
	}
	return total
}

// Updates sums vertex value changes over all iterations.
func (r *Run) Updates() int64 {
	var total int64
	for _, s := range r.Iters {
		total += s.Updates
	}
	return total
}

// Suppressed sums RR-skipped vertex computations.
func (r *Run) Suppressed() int64 {
	var total int64
	for _, s := range r.Iters {
		total += s.Suppressed
	}
	return total
}

// Merge sums per-iteration stats across workers (aligning by superstep
// index) and returns cluster-wide aggregates; worker wall times are kept as
// the per-entry maxima since supersteps are barrier-aligned.
func Merge(runs []*Run) *Run {
	out := &Run{}
	for _, r := range runs {
		for i, s := range r.Iters {
			for len(out.Iters) <= i {
				out.Iters = append(out.Iters, IterStat{Iter: len(out.Iters)})
			}
			o := &out.Iters[i]
			o.Mode = s.Mode
			o.Computations += s.Computations
			o.Updates += s.Updates
			o.Suppressed += s.Suppressed
			o.CatchUps += s.CatchUps
			o.SyncBytes += s.SyncBytes
			o.StreamedBytes += s.StreamedBytes
			o.SyncSparse = o.SyncSparse || s.SyncSparse
			if s.ExposedComm > o.ExposedComm {
				o.ExposedComm = s.ExposedComm
			}
			if s.ActiveVerts > o.ActiveVerts {
				o.ActiveVerts = s.ActiveVerts
			}
			if s.ECGlobal > o.ECGlobal {
				o.ECGlobal = s.ECGlobal
			}
			if s.Time > o.Time {
				o.Time = s.Time
			}
			// Process-global measurements: every in-process worker saw the
			// same counters, so max (not sum) avoids double counting.
			if s.HeapAllocs > o.HeapAllocs {
				o.HeapAllocs = s.HeapAllocs
			}
			if s.HeapBytes > o.HeapBytes {
				o.HeapBytes = s.HeapBytes
			}
		}
		if r.PullTime > out.PullTime {
			out.PullTime = r.PullTime
		}
		if r.PushTime > out.PushTime {
			out.PushTime = r.PushTime
		}
		if r.Total > out.Total {
			out.Total = r.Total
		}
		if r.ComputeTime > out.ComputeTime {
			out.ComputeTime = r.ComputeTime
		}
		if r.SyncTime > out.SyncTime {
			out.SyncTime = r.SyncTime
		}
		if r.FrontierTime > out.FrontierTime {
			out.FrontierTime = r.FrontierTime
		}
		if r.CommitTime > out.CommitTime {
			out.CommitTime = r.CommitTime
		}
		if r.CkptTime > out.CkptTime {
			out.CkptTime = r.CkptTime
		}
		if r.RebalanceTime > out.RebalanceTime {
			out.RebalanceTime = r.RebalanceTime
		}
		out.Steals += r.Steals
		if r.Rebalances > out.Rebalances {
			out.Rebalances = r.Rebalances // all workers rebalance in lockstep
		}
		if r.DenseSyncs > out.DenseSyncs {
			out.DenseSyncs = r.DenseSyncs // lockstep: identical on every worker
		}
		if r.SparseSyncs > out.SparseSyncs {
			out.SparseSyncs = r.SparseSyncs
		}
		if r.OverlappedSyncs > out.OverlappedSyncs {
			out.OverlappedSyncs = r.OverlappedSyncs // lockstep: identical on every worker
		}
		out.FlushBytes += r.FlushBytes
		for name, n := range r.CodecPicks {
			if out.CodecPicks == nil {
				out.CodecPicks = make(map[string]int64)
			}
			out.CodecPicks[name] += n
		}
	}
	return out
}

// Imbalance returns (max-min)/max over per-worker compute times, the
// paper's inter-node imbalance measure (Fig. 10b). Returns 0 for fewer than
// two workers or zero max.
func Imbalance(runs []*Run) float64 {
	if len(runs) < 2 {
		return 0
	}
	min, max := runs[0].ComputeTime, runs[0].ComputeTime
	for _, r := range runs[1:] {
		if r.ComputeTime < min {
			min = r.ComputeTime
		}
		if r.ComputeTime > max {
			max = r.ComputeTime
		}
	}
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}
