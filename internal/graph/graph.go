// Package graph provides the in-memory graph representation used by every
// engine in this repository: a compressed-sparse-row (CSR) view of the
// outgoing edges and a compressed-sparse-column (CSC) view of the incoming
// edges, both built once from an edge list ("Formatting" stage in the SLFE
// pipeline, §3.1 of the paper).
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"slfe/internal/ws"
)

// VertexID identifies a vertex. Graphs in this repository are bounded by
// 2^32 vertices, matching the paper's datasets.
type VertexID = uint32

// Edge is one directed, weighted edge.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Graph is an immutable directed graph in CSR+CSC form.
//
// Outgoing edges of v: Dst[OutOff[v]:OutOff[v+1]] with weights
// OutW[OutOff[v]:OutOff[v+1]]. Incoming edges of v: Src[InOff[v]:InOff[v+1]]
// with weights InW[...]. Both adjacency lists are sorted by neighbour ID.
type Graph struct {
	n int64 // number of vertices
	m int64 // number of directed edges

	OutOff []int64
	OutDst []VertexID
	OutW   []float32

	InOff []int64
	InSrc []VertexID
	InW   []float32
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return int(g.n) }

// NumEdges returns |E| (directed).
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int64 { return g.OutOff[v+1] - g.OutOff[v] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int64 { return g.InOff[v+1] - g.InOff[v] }

// OutNeighbors returns the sorted slice of out-neighbours of v. The slice
// aliases the graph's storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.OutDst[g.OutOff[v]:g.OutOff[v+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(v).
func (g *Graph) OutWeights(v VertexID) []float32 {
	return g.OutW[g.OutOff[v]:g.OutOff[v+1]]
}

// InNeighbors returns the sorted slice of in-neighbours of v. The slice
// aliases the graph's storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.InSrc[g.InOff[v]:g.InOff[v+1]]
}

// InWeights returns the weights parallel to InNeighbors(v).
func (g *Graph) InWeights(v VertexID) []float32 {
	return g.InW[g.InOff[v]:g.InOff[v+1]]
}

// Edges appends every edge to dst and returns it, in (src, dst) order.
func (g *Graph) Edges(dst []Edge) []Edge {
	for v := int64(0); v < g.n; v++ {
		for i := g.OutOff[v]; i < g.OutOff[v+1]; i++ {
			dst = append(dst, Edge{Src: VertexID(v), Dst: g.OutDst[i], Weight: g.OutW[i]})
		}
	}
	return dst
}

// AvgDegree returns m/n (0 for the empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// MaxOutDegree returns the largest out-degree.
func (g *Graph) MaxOutDegree() int64 {
	var max int64
	for v := int64(0); v < g.n; v++ {
		if d := g.OutOff[v+1] - g.OutOff[v]; d > max {
			max = d
		}
	}
	return max
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d avgdeg=%.2f}", g.n, g.m, g.AvgDegree())
}

// ErrVertexOutOfRange reports an edge endpoint >= the declared vertex count.
var ErrVertexOutOfRange = errors.New("graph: edge endpoint out of range")

// Build constructs a Graph with n vertices from the given edges. Edge order
// is irrelevant; parallel edges and self-loops are preserved (the paper's
// datasets contain both). Weights of zero are allowed.
func Build(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	g := &Graph{n: int64(n), m: int64(len(edges))}
	for _, e := range edges {
		if int64(e.Src) >= g.n || int64(e.Dst) >= g.n {
			return nil, fmt.Errorf("%w: (%d -> %d) with n=%d", ErrVertexOutOfRange, e.Src, e.Dst, n)
		}
	}

	// Counting sort into CSR.
	g.OutOff = make([]int64, n+1)
	for _, e := range edges {
		g.OutOff[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.OutOff[v+1] += g.OutOff[v]
	}
	g.OutDst = make([]VertexID, len(edges))
	g.OutW = make([]float32, len(edges))
	cursor := make([]int64, n)
	for _, e := range edges {
		p := g.OutOff[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		g.OutDst[p] = e.Dst
		g.OutW[p] = e.Weight
	}
	// One scheduler pool serves both adjacency sorts.
	sorter := newAdjSorter()
	defer sorter.close()
	sorter.sort(g.OutOff, g.OutDst, g.OutW, n)

	// Counting sort into CSC.
	g.InOff = make([]int64, n+1)
	for _, e := range edges {
		g.InOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.InOff[v+1] += g.InOff[v]
	}
	g.InSrc = make([]VertexID, len(edges))
	g.InW = make([]float32, len(edges))
	for i := range cursor {
		cursor[i] = 0
	}
	for _, e := range edges {
		p := g.InOff[e.Dst] + cursor[e.Dst]
		cursor[e.Dst]++
		g.InSrc[p] = e.Src
		g.InW[p] = e.Weight
	}
	sorter.sort(g.InOff, g.InSrc, g.InW, n)
	return g, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are constructed in-range.
func MustBuild(n int, edges []Edge) *Graph {
	g, err := Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// adjSorter sorts every vertex's adjacency segment by (neighbour id,
// weight). Instead of sort.Sort over an interface pair — an indirect
// Less/Swap call per comparison — each segment is packed into uint64 keys
// (id in the high half, the weight's order-preserving bit image in the low
// half), sorted with the radix-friendly slices.Sort, and unpacked; the key
// is self-contained, so no permutation tracking is needed. Segments are
// independent, so the per-vertex sorts run chunk-parallel on a scheduler —
// graph formatting is a fixed cost on every bench run (§3.1's Formatting
// stage). One sorter (pool + per-thread scratch) serves both of Build's
// adjacency passes.
type adjSorter struct {
	sched   *ws.Scheduler
	scratch [][]uint64
}

func newAdjSorter() *adjSorter {
	sched := ws.New(0, true)
	return &adjSorter{sched: sched, scratch: make([][]uint64, sched.Threads())}
}

func (s *adjSorter) close() { s.sched.Close() }

func (s *adjSorter) sort(off []int64, ids []VertexID, w []float32, n int) {
	if n == 0 {
		return
	}
	s.sched.Run(0, uint32(n), func(clo, chi uint32, th int) {
		buf := s.scratch[th]
		for v := clo; v < chi; v++ {
			lo, hi := off[v], off[v+1]
			if hi-lo < 2 {
				continue
			}
			seg := int(hi - lo)
			if cap(buf) < seg {
				buf = make([]uint64, seg)
			}
			buf = buf[:seg]
			for i := 0; i < seg; i++ {
				buf[i] = uint64(ids[lo+int64(i)])<<32 | uint64(orderedWeightBits(w[lo+int64(i)]))
			}
			slices.Sort(buf)
			for i := 0; i < seg; i++ {
				ids[lo+int64(i)] = VertexID(buf[i] >> 32)
				w[lo+int64(i)] = weightFromOrderedBits(uint32(buf[i]))
			}
		}
		s.scratch[th] = buf
	})
}

// orderedWeightBits maps a float32 to a uint32 whose unsigned order matches
// the float order (sign bit flipped for non-negatives, all bits inverted
// for negatives — the classic radix-sort transform). The mapping is a
// bijection, so weights round-trip bit-exactly through the packed sort key.
func orderedWeightBits(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x8000_0000 != 0 {
		return ^b
	}
	return b | 0x8000_0000
}

// weightFromOrderedBits inverts orderedWeightBits.
func weightFromOrderedBits(x uint32) float32 {
	if x&0x8000_0000 != 0 {
		return math.Float32frombits(x ^ 0x8000_0000)
	}
	return math.Float32frombits(^x)
}

// Reverse returns the transpose graph (every edge flipped).
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n: g.n, m: g.m,
		OutOff: g.InOff, OutDst: g.InSrc, OutW: g.InW,
		InOff: g.OutOff, InSrc: g.OutDst, InW: g.OutW,
	}
}

// Validate performs structural integrity checks and returns the first
// violation found, if any. It is used by tests and by loaders after reading
// untrusted input.
func (g *Graph) Validate() error {
	if g.n < 0 || g.m < 0 {
		return errors.New("graph: negative size")
	}
	if int64(len(g.OutOff)) != g.n+1 || int64(len(g.InOff)) != g.n+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.OutOff[0] != 0 || g.InOff[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	if g.OutOff[g.n] != g.m || g.InOff[g.n] != g.m {
		return errors.New("graph: offsets must end at m")
	}
	for v := int64(0); v < g.n; v++ {
		if g.OutOff[v] > g.OutOff[v+1] || g.InOff[v] > g.InOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at vertex %d", v)
		}
	}
	if int64(len(g.OutDst)) != g.m || int64(len(g.InSrc)) != g.m {
		return errors.New("graph: edge array length mismatch")
	}
	for _, d := range g.OutDst {
		if int64(d) >= g.n {
			return fmt.Errorf("%w: out-dst %d", ErrVertexOutOfRange, d)
		}
	}
	for _, s := range g.InSrc {
		if int64(s) >= g.n {
			return fmt.Errorf("%w: in-src %d", ErrVertexOutOfRange, s)
		}
	}
	return nil
}
