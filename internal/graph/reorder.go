package graph

import (
	"fmt"
	"sort"
)

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm must
// be a permutation of [0, |V|). Relabelling changes nothing semantically
// but everything physically: CSR locality follows vertex numbering, so
// orderings that place hot vertices together (degree order) or neighbours
// together (BFS order) change cache behaviour, chunked-partition balance
// and mini-chunk stealing patterns.
func (g *Graph) Relabel(perm []VertexID) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int64(p) >= int64(n) || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (duplicate or out-of-range %d)", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		id := VertexID(v)
		outs, ws := g.OutNeighbors(id), g.OutWeights(id)
		for i, u := range outs {
			edges = append(edges, Edge{Src: perm[v], Dst: perm[u], Weight: ws[i]})
		}
	}
	return Build(n, edges)
}

// DegreeOrder returns a permutation placing vertices in descending
// (out+in)-degree order: hubs get the smallest ids, concentrating the hot
// rows of the CSR at its front.
func DegreeOrder(g *Graph) []VertexID {
	n := g.NumVertices()
	order := make([]VertexID, n)
	for v := range order {
		order[v] = VertexID(v)
	}
	deg := func(v VertexID) int64 { return g.OutDegree(v) + g.InDegree(v) }
	sort.SliceStable(order, func(i, j int) bool { return deg(order[i]) > deg(order[j]) })
	// order[rank] = old id; perm[old id] = rank.
	perm := make([]VertexID, n)
	for rank, old := range order {
		perm[old] = VertexID(rank)
	}
	return perm
}

// BFSOrder returns a permutation numbering vertices in BFS discovery order
// from root (unreached vertices keep their relative order after all
// reached ones). Neighbouring vertices get nearby ids, the classic
// locality-improving relabelling.
func BFSOrder(g *Graph, root VertexID) []VertexID {
	n := g.NumVertices()
	perm := make([]VertexID, n)
	visited := make([]bool, n)
	next := VertexID(0)
	if n == 0 {
		return perm
	}
	if int64(root) >= int64(n) {
		root = 0
	}
	queue := []VertexID{root}
	visited[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		perm[v] = next
		next++
		for _, u := range g.OutNeighbors(v) {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			perm[v] = next
			next++
		}
	}
	return perm
}

// InversePerm returns the inverse permutation (mapping new ids back to the
// originals), used to translate relabelled results back.
func InversePerm(perm []VertexID) []VertexID {
	inv := make([]VertexID, len(perm))
	for old, new := range perm {
		inv[new] = VertexID(old)
	}
	return inv
}
