package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph returns the 6-vertex example from Figure 1 of the paper.
func paperGraph() *Graph {
	return MustBuild(6, []Edge{
		{0, 1, 1}, {0, 3, 2}, {1, 2, 1}, {2, 4, 1}, {3, 4, 2}, {4, 5, 1}, {2, 5, 5},
	})
}

func TestBuildSmall(t *testing.T) {
	g := paperGraph()
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", g.NumEdges())
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(4); got != 2 {
		t.Errorf("InDegree(4) = %d, want 2", got)
	}
	if got := g.InDegree(0); got != 0 {
		t.Errorf("InDegree(0) = %d, want 0", got)
	}
	outs := g.OutNeighbors(0)
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 3 {
		t.Errorf("OutNeighbors(0) = %v, want [1 3]", outs)
	}
	ins := g.InNeighbors(5)
	if len(ins) != 2 || ins[0] != 2 || ins[1] != 4 {
		t.Errorf("InNeighbors(5) = %v, want [2 4]", ins)
	}
	w := g.InWeights(5)
	if w[0] != 5 || w[1] != 1 {
		t.Errorf("InWeights(5) = %v, want [5 1]", w)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildEmptyAndSingleton(t *testing.T) {
	g, err := Build(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.AvgDegree() != 0 {
		t.Fatalf("empty graph: %v", g)
	}
	g, err = Build(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 0 || g.InDegree(0) != 0 {
		t.Fatal("singleton has edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 2, 1}}); err == nil {
		t.Fatal("Build accepted out-of-range destination")
	}
	if _, err := Build(2, []Edge{{5, 0, 1}}); err == nil {
		t.Fatal("Build accepted out-of-range source")
	}
	if _, err := Build(-1, nil); err == nil {
		t.Fatal("Build accepted negative n")
	}
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 0, 1}, {0, 1, 2}, {0, 1, 3}})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (parallel preserved)", g.NumEdges())
	}
	if g.OutDegree(0) != 3 {
		t.Fatalf("OutDegree(0) = %d, want 3", g.OutDegree(0))
	}
	w := g.OutWeights(0)
	// Sorted by (id, weight): (0,1) (1,2) (1,3).
	if w[0] != 1 || w[1] != 2 || w[2] != 3 {
		t.Fatalf("OutWeights(0) = %v", w)
	}
}

func TestReverse(t *testing.T) {
	g := paperGraph()
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("Reverse changed edge count")
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if g.OutDegree(v) != r.InDegree(v) || g.InDegree(v) != r.OutDegree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOutDegree(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 0, 1}})
	if got := g.MaxOutDegree(); got != 3 {
		t.Fatalf("MaxOutDegree = %d, want 3", got)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1, 1}, {0, 3, 2}, {1, 2, 1}, {3, 3, 9}}
	g := MustBuild(4, in)
	out := g.Edges(nil)
	if len(out) != len(in) {
		t.Fatalf("Edges returned %d edges, want %d", len(out), len(in))
	}
	// Compare as multisets.
	seen := map[Edge]int{}
	for _, e := range in {
		seen[e]++
	}
	for _, e := range out {
		seen[e]--
		if seen[e] < 0 {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := paperGraph()
	g.OutOff[3] = g.OutOff[4] + 1 // non-monotone
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed non-monotone offsets")
	}
	g = paperGraph()
	g.OutDst[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range dst")
	}
	g = paperGraph()
	g.InOff[0] = 1
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed offset[0] != 0")
	}
}

// randomEdges generates a reproducible random edge list over n vertices.
func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			Src:    VertexID(rng.Intn(n)),
			Dst:    VertexID(rng.Intn(n)),
			Weight: float32(rng.Intn(100) + 1),
		}
	}
	return edges
}

// Property: sum of out-degrees == sum of in-degrees == m, and every edge in
// the input appears in both CSR and CSC.
func TestQuickDegreeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		m := rng.Intn(1000)
		edges := randomEdges(rng, n, m)
		g := MustBuild(n, edges)
		var sumOut, sumIn int64
		for v := 0; v < n; v++ {
			sumOut += g.OutDegree(VertexID(v))
			sumIn += g.InDegree(VertexID(v))
		}
		if sumOut != int64(m) || sumIn != int64(m) {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR and CSC describe the same edge multiset.
func TestQuickCSREqualsCSC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		edges := randomEdges(rng, n, rng.Intn(500))
		g := MustBuild(n, edges)
		type key struct {
			s, d VertexID
			w    float32
		}
		count := map[key]int{}
		for v := VertexID(0); int(v) < n; v++ {
			ns, ws := g.OutNeighbors(v), g.OutWeights(v)
			for i := range ns {
				count[key{v, ns[i], ws[i]}]++
			}
		}
		for v := VertexID(0); int(v) < n; v++ {
			ns, ws := g.InNeighbors(v), g.InWeights(v)
			for i := range ns {
				count[key{ns[i], v, ws[i]}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adjacency lists are sorted.
func TestQuickAdjacencySorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		g := MustBuild(n, randomEdges(rng, n, rng.Intn(400)))
		for v := VertexID(0); int(v) < n; v++ {
			ns := g.OutNeighbors(v)
			for i := 1; i < len(ns); i++ {
				if ns[i-1] > ns[i] {
					return false
				}
			}
			ins := g.InNeighbors(v)
			for i := 1; i < len(ins); i++ {
				if ins[i-1] > ins[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := randomEdges(rng, 10000, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(10000, edges); err != nil {
			b.Fatal(err)
		}
	}
}

// The packed parallel adjacency sort must agree with a plain reference
// sort: ascending neighbour id, ties broken by ascending weight, parallel
// edges preserved.
func TestSortAdjacencyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weights := []float32{-3.5, -1, 0, 0.25, 1, 2, 1e9, -1e9, 7}
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		m := rng.Intn(400)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{
				Src:    VertexID(rng.Intn(n)),
				Dst:    VertexID(rng.Intn(n)),
				Weight: weights[rng.Intn(len(weights))],
			}
		}
		g, err := Build(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			outs, ows := g.OutNeighbors(VertexID(v)), g.OutWeights(VertexID(v))
			for i := 1; i < len(outs); i++ {
				if outs[i] < outs[i-1] || (outs[i] == outs[i-1] && ows[i] < ows[i-1]) {
					t.Fatalf("trial %d: out-adjacency of %d unsorted at %d: (%d,%v) before (%d,%v)",
						trial, v, i, outs[i-1], ows[i-1], outs[i], ows[i])
				}
			}
			ins, iws := g.InNeighbors(VertexID(v)), g.InWeights(VertexID(v))
			for i := 1; i < len(ins); i++ {
				if ins[i] < ins[i-1] || (ins[i] == ins[i-1] && iws[i] < iws[i-1]) {
					t.Fatalf("trial %d: in-adjacency of %d unsorted at %d", trial, v, i)
				}
			}
		}
		// Multiset of edges unchanged.
		got := g.Edges(nil)
		if len(got) != len(edges) {
			t.Fatalf("trial %d: %d edges after build, want %d", trial, len(got), len(edges))
		}
		count := map[Edge]int{}
		for _, e := range edges {
			count[e]++
		}
		for _, e := range got {
			count[e]--
		}
		for e, c := range count {
			if c != 0 {
				t.Fatalf("trial %d: edge %v multiplicity off by %d", trial, e, c)
			}
		}
	}
}

// The weight bit transform must be an order-preserving bijection, so the
// packed sort key reconstructs weights bit-exactly.
func TestOrderedWeightBits(t *testing.T) {
	vals := []float32{
		float32(math.Inf(-1)), -1e30, -2.5, -1, -math.SmallestNonzeroFloat32,
		float32(math.Copysign(0, -1)), 0, math.SmallestNonzeroFloat32, 1, 2.5, 1e30,
		float32(math.Inf(1)),
	}
	for i, a := range vals {
		if got := weightFromOrderedBits(orderedWeightBits(a)); math.Float32bits(got) != math.Float32bits(a) {
			t.Fatalf("%v does not round-trip: got %v", a, got)
		}
		for _, b := range vals[i+1:] {
			if orderedWeightBits(a) >= orderedWeightBits(b) {
				t.Fatalf("order broken: bits(%v) >= bits(%v)", a, b)
			}
		}
	}
	nan := float32(math.NaN())
	if got := weightFromOrderedBits(orderedWeightBits(nan)); math.Float32bits(got) != math.Float32bits(nan) {
		t.Fatal("NaN does not round-trip")
	}
}
