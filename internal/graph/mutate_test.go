package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// assertSameGraph compares the full CSR+CSC structure of two graphs.
func assertSameGraph(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: size |V|=%d |E|=%d, want |V|=%d |E|=%d", label,
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	check := func(side string, gOff, wOff []int64, gIDs, wIDs []VertexID, gW, wW []float32) {
		for v := range wOff {
			if gOff[v] != wOff[v] {
				t.Fatalf("%s: %s offset mismatch at %d: %d vs %d", label, side, v, gOff[v], wOff[v])
			}
		}
		for i := range wIDs {
			if gIDs[i] != wIDs[i] || gW[i] != wW[i] {
				t.Fatalf("%s: %s edge %d: (%d, %g) vs (%d, %g)", label, side, i, gIDs[i], gW[i], wIDs[i], wW[i])
			}
		}
	}
	check("out", got.OutOff, want.OutOff, got.OutDst, want.OutDst, got.OutW, want.OutW)
	check("in", got.InOff, want.InOff, got.InSrc, want.InSrc, got.InW, want.InW)
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid result: %v", label, err)
	}
}

// Property: the merge path of WithEdges is structurally identical to a
// from-scratch Build over the concatenated edge list, including new
// vertices, parallel edges, self-loops and duplicate batch entries.
func TestWithEdgesMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		base := randomEdges(rng, n, rng.Intn(4*n))
		g := MustBuild(n, base)

		grow := rng.Intn(5)
		total := n + grow
		added := randomEdges(rng, total, 1+rng.Intn(30))
		if rng.Intn(2) == 0 { // force a duplicate and a self-loop
			added = append(added, added[0], Edge{Src: 0, Dst: 0, Weight: 1})
		}

		got, err := WithEdges(g, added, total)
		if err != nil {
			return false
		}
		want := MustBuild(total, append(append([]Edge(nil), base...), added...))
		if got.NumEdges() != want.NumEdges() || got.NumVertices() != want.NumVertices() {
			return false
		}
		for v := range want.OutOff {
			if got.OutOff[v] != want.OutOff[v] || got.InOff[v] != want.InOff[v] {
				return false
			}
		}
		for i := range want.OutDst {
			if got.OutDst[i] != want.OutDst[i] || got.OutW[i] != want.OutW[i] ||
				got.InSrc[i] != want.InSrc[i] || got.InW[i] != want.InW[i] {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWithEdgesLeavesOriginalUntouched(t *testing.T) {
	base := []Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}}
	g := MustBuild(3, base)
	if _, err := WithEdges(g, []Edge{{Src: 2, Dst: 3, Weight: 1}, {Src: 0, Dst: 2, Weight: 5}}, 4); err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, MustBuild(3, base), "original")
}

func TestWithEdgesRejectsBadInput(t *testing.T) {
	g := MustBuild(3, []Edge{{Src: 0, Dst: 1}})
	if _, err := WithEdges(g, nil, 2); err == nil {
		t.Fatal("shrinking vertex set accepted")
	}
	if _, err := WithEdges(g, []Edge{{Src: 0, Dst: 5}}, 4); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestWithEdgesEmptyBatchGrowsVertices(t *testing.T) {
	base := []Edge{{Src: 0, Dst: 1, Weight: 1}}
	g := MustBuild(2, base)
	got, err := WithEdges(g, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, got, MustBuild(5, base), "grown")
}

func TestWithoutEdgesRemovesAllParallelInstances(t *testing.T) {
	g := MustBuild(3, []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 1, Weight: 2}, // parallel pair
		{Src: 1, Dst: 2, Weight: 3}, {Src: 2, Dst: 2, Weight: 4}, // self-loop survives
	})
	got, removed, err := WithoutEdges(g, []Edge{{Src: 0, Dst: 1, Weight: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d edges, want 2 (both parallel instances)", removed)
	}
	want := MustBuild(3, []Edge{{Src: 1, Dst: 2, Weight: 3}, {Src: 2, Dst: 2, Weight: 4}})
	assertSameGraph(t, got, want, "after delete")
}

func TestWithoutEdgesMissingPairIsNoOp(t *testing.T) {
	g := MustBuild(3, []Edge{{Src: 0, Dst: 1, Weight: 1}})
	got, removed, err := WithoutEdges(g, []Edge{{Src: 1, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || got.NumEdges() != 1 {
		t.Fatalf("removed=%d |E|=%d, want 0 and 1", removed, got.NumEdges())
	}
}

func TestWithoutEdgesRejectsOutOfRange(t *testing.T) {
	g := MustBuild(2, []Edge{{Src: 0, Dst: 1}})
	if _, _, err := WithoutEdges(g, []Edge{{Src: 0, Dst: 9}}); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
}

// Property: WithoutEdges equals a filtered rebuild.
func TestWithoutEdgesMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		base := randomEdges(rng, n, 1+rng.Intn(4*n))
		g := MustBuild(n, base)
		del := randomEdges(rng, n, 1+rng.Intn(6))

		got, removed, err := WithoutEdges(g, del)
		if err != nil {
			return false
		}
		kill := map[[2]VertexID]bool{}
		for _, e := range del {
			kill[[2]VertexID{e.Src, e.Dst}] = true
		}
		var kept []Edge
		for _, e := range base {
			if !kill[[2]VertexID{e.Src, e.Dst}] {
				kept = append(kept, e)
			}
		}
		if removed != int64(len(base)-len(kept)) {
			return false
		}
		want := MustBuild(n, kept)
		if got.NumEdges() != want.NumEdges() {
			return false
		}
		for i := range want.OutDst {
			if got.OutDst[i] != want.OutDst[i] || got.OutW[i] != want.OutW[i] {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
