package graph

// View is the narrow graph-access interface the engine stack runs over.
// Two implementations exist: the heap-resident CSR+CSC *Graph and the
// mmap'd compressed on-disk store.Graph, so the same superstep engine,
// guidance generator and partitioner work whether the graph lives in RAM
// or in a mapped file.
//
// Concurrency contract:
//
//   - NumVertices, NumEdges, OutDegree and InDegree are safe for
//     concurrent use (they read the offset index, never adjacency data).
//   - The adjacency methods on the View itself are single-goroutine: a
//     disk-backed graph serves them through one internal decoder. Code
//     that scans adjacency from multiple threads must take one Cursor per
//     thread via Cursor() and read through it.
//   - Slices returned by adjacency methods alias decoder scratch (or the
//     graph's storage): they are valid until the next adjacency call on
//     the same View/Cursor and must not be modified.
type View interface {
	NumVertices() int
	NumEdges() int64
	OutDegree(v VertexID) int64
	InDegree(v VertexID) int64

	OutNeighbors(v VertexID) []VertexID
	OutWeights(v VertexID) []float32
	InNeighbors(v VertexID) []VertexID
	InWeights(v VertexID) []float32

	// Cursor returns an independent adjacency reader. Cursors are cheap
	// for heap graphs (the graph itself) and hold one block-decode
	// scratch set for disk-backed graphs; each cursor is single-goroutine.
	Cursor() Cursor
}

// Cursor is a thread-local adjacency reader over a View. See View's
// concurrency contract for slice lifetime.
type Cursor interface {
	OutNeighbors(v VertexID) []VertexID
	OutWeights(v VertexID) []float32
	InNeighbors(v VertexID) []VertexID
	InWeights(v VertexID) []float32
}

// Cursor implements View: the heap graph's adjacency slices alias
// immutable storage, so the graph is its own (free, shareable) cursor.
func (g *Graph) Cursor() Cursor { return g }

var (
	_ View   = (*Graph)(nil)
	_ Cursor = (*Graph)(nil)
)

// CollectEdges appends every edge of v to dst and returns it, in
// (src, ascending dst) order — the View counterpart of Graph.Edges, used
// to materialise a heap graph from a disk-backed one (symmetrisation,
// format conversion).
func CollectEdges(v View, dst []Edge) []Edge {
	cur := v.Cursor()
	n := v.NumVertices()
	for s := 0; s < n; s++ {
		src := VertexID(s)
		ns, ws := cur.OutNeighbors(src), cur.OutWeights(src)
		for i := range ns {
			dst = append(dst, Edge{Src: src, Dst: ns[i], Weight: ws[i]})
		}
	}
	return dst
}

// Materialize builds a heap CSR+CSC Graph from any View (identity for a
// *Graph already on the heap).
func Materialize(v View) (*Graph, error) {
	if g, ok := v.(*Graph); ok {
		return g, nil
	}
	edges := CollectEdges(v, make([]Edge, 0, v.NumEdges()))
	return Build(v.NumVertices(), edges)
}

// AdjSortKey packs a neighbour id and edge weight into a uint64 whose
// unsigned order is (id, then weight) order — the same key Build uses to
// sort adjacency. Exported so external builders (internal/store) produce
// bit-identical adjacency ordering without materialising a heap graph.
func AdjSortKey(id VertexID, w float32) uint64 {
	return uint64(id)<<32 | uint64(orderedWeightBits(w))
}

// AdjSortKeyDecode inverts AdjSortKey, recovering the id and the
// bit-exact weight.
func AdjSortKeyDecode(k uint64) (VertexID, float32) {
	return VertexID(k >> 32), weightFromOrderedBits(uint32(k))
}
