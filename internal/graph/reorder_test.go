package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ladder() *Graph {
	return MustBuild(6, []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3}, {Src: 3, Dst: 4, Weight: 4},
		{Src: 4, Dst: 5, Weight: 5}, {Src: 0, Dst: 5, Weight: 6},
	})
}

func TestRelabelIdentity(t *testing.T) {
	g := ladder()
	perm := []VertexID{0, 1, 2, 3, 4, 5}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := g.Edges(nil), h.Edges(nil)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := ladder()
	perm := []VertexID{5, 4, 3, 2, 1, 0} // reversal
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() || h.NumVertices() != g.NumVertices() {
		t.Fatal("size changed")
	}
	// Edge (0 -> 1, w=1) must appear as (5 -> 4, w=1).
	found := false
	for i, u := range h.OutNeighbors(5) {
		if u == 4 && h.OutWeights(5)[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("relabelled edge missing")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelRejectsBadPerms(t *testing.T) {
	g := ladder()
	for _, perm := range [][]VertexID{
		{0, 1},             // wrong length
		{0, 1, 2, 3, 4, 4}, // duplicate
		{0, 1, 2, 3, 4, 9}, // out of range
	} {
		if _, err := g.Relabel(perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

func TestDegreeOrderPutsHubsFirst(t *testing.T) {
	// Star: vertex 3 is the hub.
	g := MustBuild(5, []Edge{
		{Src: 3, Dst: 0}, {Src: 3, Dst: 1}, {Src: 3, Dst: 2}, {Src: 3, Dst: 4},
		{Src: 0, Dst: 1},
	})
	perm := DegreeOrder(g)
	if perm[3] != 0 {
		t.Fatalf("hub got rank %d, want 0", perm[3])
	}
}

func TestBFSOrderNumbersByDiscovery(t *testing.T) {
	g := ladder()
	perm := BFSOrder(g, 0)
	if perm[0] != 0 {
		t.Fatalf("root rank %d", perm[0])
	}
	// 0's direct successors (1 and 5) must precede 2, 3, 4.
	if perm[1] > perm[2] || perm[5] > perm[2] {
		t.Fatalf("BFS order violated: %v", perm)
	}
}

func TestBFSOrderCoversUnreached(t *testing.T) {
	g := MustBuild(4, []Edge{{Src: 0, Dst: 1}}) // 2 and 3 unreachable
	perm := BFSOrder(g, 0)
	seen := map[VertexID]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("perm not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestInversePerm(t *testing.T) {
	perm := []VertexID{2, 0, 1}
	inv := InversePerm(perm)
	for old, new := range perm {
		if inv[new] != VertexID(old) {
			t.Fatalf("inv[%d] = %d, want %d", new, inv[new], old)
		}
	}
}

// Property: any valid random permutation preserves degree multiset and
// validates; orders produced by DegreeOrder/BFSOrder are permutations.
func TestRelabelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		edges := make([]Edge, rng.Intn(4*n))
		for i := range edges {
			edges[i] = Edge{Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: float32(rng.Intn(9))}
		}
		g := MustBuild(n, edges)
		perm := rng.Perm(n)
		p := make([]VertexID, n)
		for i, x := range perm {
			p[i] = VertexID(x)
		}
		h, err := g.Relabel(p)
		if err != nil || h.Validate() != nil {
			return false
		}
		// Degree multiset preserved.
		degs := func(gr *Graph) map[int64]int {
			m := map[int64]int{}
			for v := 0; v < gr.NumVertices(); v++ {
				m[gr.OutDegree(VertexID(v))]++
			}
			return m
		}
		da, db := degs(g), degs(h)
		if len(da) != len(db) {
			return false
		}
		for k, v := range da {
			if db[k] != v {
				return false
			}
		}
		// Generated orders are permutations.
		for _, generated := range [][]VertexID{DegreeOrder(g), BFSOrder(g, 0)} {
			seen := make([]bool, n)
			for _, x := range generated {
				if int(x) >= n || seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelabelSelfLoops checks self-loops survive relabelling: a loop on v
// must become a loop on perm[v] with its weight intact.
func TestRelabelSelfLoops(t *testing.T) {
	g := MustBuild(4, []Edge{
		{Src: 1, Dst: 1, Weight: 7}, {Src: 0, Dst: 2, Weight: 1}, {Src: 3, Dst: 3, Weight: 2},
	})
	perm := []VertexID{3, 2, 1, 0}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		v VertexID
		w float32
	}{{2, 7}, {0, 2}} { // loops at perm[1]=2 and perm[3]=0
		found := false
		for i, u := range h.OutNeighbors(tc.v) {
			if u == tc.v && h.OutWeights(tc.v)[i] == tc.w {
				found = true
			}
		}
		if !found {
			t.Fatalf("self-loop at %d (weight %v) lost in relabelling", tc.v, tc.w)
		}
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), h.NumEdges())
	}
}

// TestBFSOrderSelfLoopRoot checks a root whose only out-edge is a
// self-loop does not wedge the traversal.
func TestBFSOrderSelfLoopRoot(t *testing.T) {
	g := MustBuild(3, []Edge{{Src: 0, Dst: 0}, {Src: 1, Dst: 2}})
	perm := BFSOrder(g, 0)
	if perm[0] != 0 {
		t.Fatalf("root rank %d, want 0", perm[0])
	}
	seen := make([]bool, 3)
	for _, p := range perm {
		if int(p) >= len(seen) || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

// TestBFSOrderDisconnectedComponents checks unreached components keep
// their relative order after every reached vertex.
func TestBFSOrderDisconnectedComponents(t *testing.T) {
	// Component A: 0 -> 1; component B: 2 -> 3; isolated: 4.
	g := MustBuild(5, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	perm := BFSOrder(g, 0)
	if perm[0] != 0 || perm[1] != 1 {
		t.Fatalf("reached component misordered: %v", perm)
	}
	// Unreached vertices 2, 3, 4 follow in original relative order.
	if perm[2] != 2 || perm[3] != 3 || perm[4] != 4 {
		t.Fatalf("unreached vertices reordered: %v", perm)
	}
	// Rooting in component B leaves A unreached but still covered.
	perm = BFSOrder(g, 2)
	if perm[2] != 0 || perm[3] != 1 {
		t.Fatalf("component B misordered from its root: %v", perm)
	}
	if perm[0] != 2 || perm[1] != 3 || perm[4] != 4 {
		t.Fatalf("unreached component A misordered: %v", perm)
	}
}

// TestReorderEmptyGraph checks the zero-vertex graph round-trips through
// every reordering helper without panicking.
func TestReorderEmptyGraph(t *testing.T) {
	g := MustBuild(0, nil)
	if perm := BFSOrder(g, 0); len(perm) != 0 {
		t.Fatalf("BFSOrder on empty graph returned %v", perm)
	}
	if perm := DegreeOrder(g); len(perm) != 0 {
		t.Fatalf("DegreeOrder on empty graph returned %v", perm)
	}
	h, err := g.Relabel(nil)
	if err != nil {
		t.Fatalf("Relabel on empty graph: %v", err)
	}
	if h.NumVertices() != 0 || h.NumEdges() != 0 {
		t.Fatalf("empty graph relabelled into %v", h)
	}
	if inv := InversePerm(nil); len(inv) != 0 {
		t.Fatalf("InversePerm(nil) returned %v", inv)
	}
}

// TestBFSOrderOutOfRangeRootFallsBack documents the out-of-range-root
// fallback: the traversal restarts from vertex 0.
func TestBFSOrderOutOfRangeRootFallsBack(t *testing.T) {
	g := ladder()
	if got, want := BFSOrder(g, 99), BFSOrder(g, 0); len(got) != len(want) {
		t.Fatal("length mismatch")
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("fallback order differs at %d: %v vs %v", i, got, want)
			}
		}
	}
}
