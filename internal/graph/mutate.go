package graph

import (
	"errors"
	"fmt"
	"slices"

	"slfe/internal/ws"
)

// WithEdges returns a new graph containing every edge of g plus the added
// edges, over n >= g.NumVertices() vertices (new vertices start isolated).
// g itself is untouched — graphs stay immutable, which is what lets a
// resident service swap snapshot versions under concurrent readers.
//
// Instead of re-running the full Build pipeline (counting sort + per-vertex
// re-sort of all m+k edges), only the added edges are sorted and each
// touched adjacency segment is produced by a two-pointer merge with the old
// (already sorted) segment, so the rebuild cost is O(m + k log k) copies
// rather than a full re-sort.
func WithEdges(g *Graph, added []Edge, n int) (*Graph, error) {
	if n < g.NumVertices() {
		return nil, fmt.Errorf("graph: WithEdges cannot shrink the vertex set (%d -> %d); build a new graph instead", g.NumVertices(), n)
	}
	for _, e := range added {
		if int64(e.Src) >= int64(n) || int64(e.Dst) >= int64(n) {
			return nil, fmt.Errorf("%w: added edge (%d -> %d) with n=%d", ErrVertexOutOfRange, e.Src, e.Dst, n)
		}
	}
	out := &Graph{n: int64(n), m: g.m + int64(len(added))}

	sched := ws.New(0, true)
	defer sched.Close()
	out.OutOff, out.OutDst, out.OutW = mergeAdj(sched, g.OutOff, g.OutDst, g.OutW, added, n, srcOf, dstOf)
	out.InOff, out.InSrc, out.InW = mergeAdj(sched, g.InOff, g.InSrc, g.InW, added, n, dstOf, srcOf)
	return out, nil
}

func srcOf(e Edge) VertexID { return e.Src }
func dstOf(e Edge) VertexID { return e.Dst }

// mergeAdj builds one side (CSR or CSC) of the extended graph: the added
// edges are bucketed by their owning endpoint with a counting sort, each
// bucket is key-sorted like Build's adjSorter, and every vertex's new
// segment is the ordered merge of its old segment and its bucket. Vertex
// segments are independent, so the merge runs chunk-parallel.
func mergeAdj(sched *ws.Scheduler, oldOff []int64, oldIDs []VertexID, oldW []float32,
	added []Edge, n int, ownerOf, otherOf func(Edge) VertexID) ([]int64, []VertexID, []float32) {
	oldN := len(oldOff) - 1

	// Counting sort of the added edges into per-owner buckets.
	addOff := make([]int64, n+1)
	for _, e := range added {
		addOff[ownerOf(e)+1]++
	}
	for v := 0; v < n; v++ {
		addOff[v+1] += addOff[v]
	}
	addIDs := make([]VertexID, len(added))
	addW := make([]float32, len(added))
	cursor := make([]int64, n)
	for _, e := range added {
		o := ownerOf(e)
		p := addOff[o] + cursor[o]
		cursor[o]++
		addIDs[p] = otherOf(e)
		addW[p] = e.Weight
	}

	// New offsets: old degree (0 for new vertices) + bucket size.
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		var oldDeg int64
		if v < oldN {
			oldDeg = oldOff[v+1] - oldOff[v]
		}
		off[v+1] = off[v] + oldDeg + (addOff[v+1] - addOff[v])
	}
	m := off[n]
	ids := make([]VertexID, m)
	w := make([]float32, m)

	sched.Run(0, uint32(n), func(clo, chi uint32, _ int) {
		var keys []uint64
		for v := clo; v < chi; v++ {
			alo, ahi := addOff[v], addOff[v+1]
			var olo, ohi int64
			if int(v) < oldN {
				olo, ohi = oldOff[v], oldOff[v+1]
			}
			p := off[v]
			if ahi == alo { // untouched vertex: plain copy
				copy(ids[p:], oldIDs[olo:ohi])
				copy(w[p:], oldW[olo:ohi])
				continue
			}
			keys = sortSegment(keys[:0], addIDs[alo:ahi], addW[alo:ahi])
			// Two-pointer merge on the same (id, ordered-weight-bits) key
			// order the old segments are kept in.
			i, j := olo, int64(0)
			for i < ohi && j < int64(len(keys)) {
				ok := uint64(oldIDs[i])<<32 | uint64(orderedWeightBits(oldW[i]))
				if ok <= keys[j] {
					ids[p], w[p] = oldIDs[i], oldW[i]
					i++
				} else {
					ids[p] = VertexID(keys[j] >> 32)
					w[p] = weightFromOrderedBits(uint32(keys[j]))
					j++
				}
				p++
			}
			for ; i < ohi; i++ {
				ids[p], w[p] = oldIDs[i], oldW[i]
				p++
			}
			for ; j < int64(len(keys)); j++ {
				ids[p] = VertexID(keys[j] >> 32)
				w[p] = weightFromOrderedBits(uint32(keys[j]))
				p++
			}
		}
	})
	return off, ids, w
}

// sortSegment packs (id, weight) pairs into self-contained sort keys
// (adjSorter's transform) and returns them sorted ascending.
func sortSegment(keys []uint64, ids []VertexID, w []float32) []uint64 {
	for i := range ids {
		keys = append(keys, uint64(ids[i])<<32|uint64(orderedWeightBits(w[i])))
	}
	// Insertion sort: buckets are typically tiny (a batch rarely adds many
	// parallel edges to one vertex); fall back to a pdq sort when not.
	if len(keys) > 32 {
		slices.Sort(keys)
		return keys
	}
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
	return keys
}

// WithoutEdges returns a new graph with every (src, dst) pair listed in
// removed deleted — all parallel instances of a listed pair are dropped and
// weights are ignored for matching. The second result is the number of
// directed edges actually removed (listing a non-existent pair is a no-op).
// Like WithEdges, g is untouched.
func WithoutEdges(g *Graph, removed []Edge) (*Graph, int64, error) {
	if len(removed) == 0 {
		return g, 0, nil
	}
	kill := make(map[uint64]struct{}, len(removed))
	for _, e := range removed {
		if int64(e.Src) >= g.n || int64(e.Dst) >= g.n {
			return nil, 0, fmt.Errorf("%w: removed edge (%d -> %d) with n=%d", ErrVertexOutOfRange, e.Src, e.Dst, g.n)
		}
		kill[uint64(e.Src)<<32|uint64(e.Dst)] = struct{}{}
	}
	n := int(g.n)
	out := &Graph{n: g.n}

	filter := func(off []int64, ids []VertexID, w []float32, pairOf func(v VertexID, other VertexID) uint64) ([]int64, []VertexID, []float32, int64) {
		nOff := make([]int64, n+1)
		nIDs := make([]VertexID, 0, len(ids))
		nW := make([]float32, 0, len(w))
		var dropped int64
		for v := 0; v < n; v++ {
			for i := off[v]; i < off[v+1]; i++ {
				if _, dead := kill[pairOf(VertexID(v), ids[i])]; dead {
					dropped++
					continue
				}
				nIDs = append(nIDs, ids[i])
				nW = append(nW, w[i])
			}
			nOff[v+1] = int64(len(nIDs))
		}
		return nOff, nIDs, nW, dropped
	}

	var outDropped, inDropped int64
	out.OutOff, out.OutDst, out.OutW, outDropped = filter(g.OutOff, g.OutDst, g.OutW,
		func(v, other VertexID) uint64 { return uint64(v)<<32 | uint64(other) })
	out.InOff, out.InSrc, out.InW, inDropped = filter(g.InOff, g.InSrc, g.InW,
		func(v, other VertexID) uint64 { return uint64(other)<<32 | uint64(v) })
	if outDropped != inDropped {
		return nil, 0, errors.New("graph: CSR/CSC disagree on removed edge count (corrupt graph)")
	}
	out.m = g.m - outDropped
	return out, outDropped, nil
}
