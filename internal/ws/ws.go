// Package ws implements the fine-grained intra-node work-stealing scheduler
// of §3.6: each vertex range is split into mini-chunks of 256 vertices;
// every thread first drains its own statically assigned span of chunks
// through an atomic cursor, then steals remaining chunks from the busiest
// peer. Shared cursors are advanced with atomic fetch-and-add (the paper's
// __sync_fetch_and_* accesses).
//
// The scheduler is a persistent worker pool: the pool goroutines are spawned
// lazily on the first parallel phase and parked on per-worker channels
// between phases, and every per-phase array (spans, per-thread counters,
// reduction accumulators) is owned by the scheduler and reused. A
// steady-state phase therefore performs no heap allocations and no goroutine
// creation — only channel wake-ups. A Scheduler is NOT safe for concurrent
// use: one phase (Run / ReduceI64 / Tasks / ParallelFor) runs at a time,
// always dispatched from the same goroutine discipline the engine already
// follows.
package ws

import (
	"runtime"
	"sync/atomic"
)

// ChunkSize is the paper's mini-chunk granularity (§3.6: "each mini-chunk
// contains 256 vertices").
const ChunkSize = 256

// Stats reports one Run's distribution of work.
//
// ChunksPerThread aliases scheduler-owned storage that the next Run
// overwrites; copy it if it must outlive the next phase.
type Stats struct {
	ChunksPerThread []int64 // chunks executed by each thread
	Steals          int64   // chunks executed by a non-owner thread
}

// MaxSkew returns max/mean chunks per thread (1.0 = perfectly balanced).
func (s Stats) MaxSkew() float64 {
	if len(s.ChunksPerThread) == 0 {
		return 1
	}
	var max, sum int64
	for _, c := range s.ChunksPerThread {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(s.ChunksPerThread)) / float64(sum)
}

// span is one thread's chunk assignment [next, end).
type span struct {
	next atomic.Int64
	end  int64
	_    [40]byte // avoid false sharing between spans
}

// paddedI64 keeps per-thread accumulators on separate cache lines.
type paddedI64 struct {
	v int64
	_ [56]byte
}

// Scheduler executes chunked parallel loops with optional stealing over a
// persistent worker pool.
type Scheduler struct {
	threads  int
	stealing bool

	// Persistent pool: workers 1..threads-1 park on wake[t] between phases;
	// the dispatching goroutine acts as worker 0. Spawned lazily so
	// schedulers that never run a phase cost nothing.
	started bool
	closed  bool
	wake    []chan struct{}
	done    chan struct{}

	// Phase state, written by the dispatcher before the wake send (the
	// channel send/receive pair is the happens-before edge workers rely on).
	body func(t int)

	// Run state (reused across phases).
	spans     []span
	perThread []int64
	steals    atomic.Int64
	lo, hi    uint32
	fn        func(chunkLo, chunkHi uint32, thread int)

	// RunOverlap state: per-chunk completion flags plus a buffered
	// completion channel (both reused across phases) and whether exec
	// should mark them. The flags give the dispatcher its ascending-order
	// cursor; the channel lets it block between completions instead of
	// burning a core spinning. mark is written by the dispatcher before
	// the wake send and reset after the last done receive, so the pool
	// goroutines always observe a settled value.
	flags     []atomic.Uint32
	chunkDone chan int64
	mark      bool

	// ReduceI64 state.
	acc   []paddedI64
	redFn func(chunkLo, chunkHi uint32, thread int) int64

	// Tasks state.
	taskN    int64
	taskNext atomic.Int64
	taskFn   func(task int)

	// Method values bound once at construction so dispatching a phase never
	// allocates a closure.
	runBody  func(t int)
	taskBody func(t int)
	redWrap  func(chunkLo, chunkHi uint32, thread int)
}

// New returns a scheduler with the given thread count (<=0 means
// GOMAXPROCS) and stealing policy.
func New(threads int, stealing bool) *Scheduler {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{threads: threads, stealing: stealing}
	s.runBody = s.runWorker
	s.taskBody = s.taskWorker
	s.redWrap = s.reduceChunk
	return s
}

// Threads returns the configured worker-thread count.
func (s *Scheduler) Threads() int { return s.threads }

// Stealing reports whether stealing is enabled.
func (s *Scheduler) Stealing() bool { return s.stealing }

// Close parks the pool permanently: the pool goroutines exit and any later
// phase panics. Closing a scheduler whose pool never started (or closing
// twice) is a no-op. Close must not race a running phase.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.wake {
		if ch != nil {
			close(ch)
		}
	}
}

// ensurePool spawns the parked pool goroutines on first use.
func (s *Scheduler) ensurePool() {
	if s.started {
		return
	}
	if s.closed {
		panic("ws: scheduler used after Close")
	}
	s.started = true
	s.wake = make([]chan struct{}, s.threads)
	s.done = make(chan struct{}, s.threads)
	for t := 1; t < s.threads; t++ {
		s.wake[t] = make(chan struct{}, 1)
		go s.park(t)
	}
}

// park is the pool goroutine's lifetime: wait for a phase, run it, report
// completion, repeat until Close.
func (s *Scheduler) park(t int) {
	for range s.wake[t] {
		s.body(t)
		s.done <- struct{}{}
	}
}

// dispatch runs body(t) on workers 0..workers-1, the dispatcher itself
// serving as worker 0, and returns after every worker finished.
func (s *Scheduler) dispatch(body func(t int), workers int) {
	if workers <= 1 {
		body(0)
		return
	}
	s.ensurePool()
	s.body = body
	for t := 1; t < workers; t++ {
		s.wake[t] <- struct{}{}
	}
	body(0)
	for i := 1; i < workers; i++ {
		<-s.done
	}
}

// Run executes fn over every mini-chunk of the vertex range [lo, hi).
// fn(chunkLo, chunkHi, thread) receives half-open vertex sub-ranges of at
// most ChunkSize vertices and the executing thread's id; it must be safe to
// call concurrently from different threads on disjoint ranges. fn must not
// re-enter the scheduler.
func (s *Scheduler) Run(lo, hi uint32, fn func(chunkLo, chunkHi uint32, thread int)) Stats {
	if s.perThread == nil {
		s.perThread = make([]int64, s.threads)
		s.spans = make([]span, s.threads)
	}
	for t := range s.perThread {
		s.perThread[t] = 0
	}
	s.steals.Store(0)
	if hi <= lo {
		return Stats{ChunksPerThread: s.perThread}
	}
	nChunks := int64(hi-lo+ChunkSize-1) / ChunkSize
	for t := 0; t < s.threads; t++ {
		s.spans[t].next.Store(int64(t) * nChunks / int64(s.threads))
		s.spans[t].end = int64(t+1) * nChunks / int64(s.threads)
	}
	s.lo, s.hi, s.fn = lo, hi, fn
	s.dispatch(s.runBody, s.threads)
	s.fn = nil
	return Stats{ChunksPerThread: s.perThread, Steals: s.steals.Load()}
}

// exec maps chunk ids to vertex sub-ranges, clamping the final chunk (and
// guarding uint32 overflow). Under RunOverlap it publishes the chunk's
// completion after fn returns; the atomic store is the happens-before edge
// the draining dispatcher relies on to read the chunk's results.
func (s *Scheduler) exec(chunk int64, thread int) {
	clo := s.lo + uint32(chunk)*ChunkSize
	chi := clo + ChunkSize
	if chi > s.hi || chi < clo {
		chi = s.hi
	}
	s.fn(clo, chi, thread)
	if s.mark {
		s.flags[chunk].Store(1)
		s.chunkDone <- chunk // buffered to nChunks: never blocks
	}
}

// runWorker is one thread's share of a Run phase.
func (s *Scheduler) runWorker(t int) {
	own := &s.spans[t]
	count := int64(0)
	// Phase 1: drain the thread's own span.
	for {
		c := own.next.Add(1) - 1
		if c >= own.end {
			break
		}
		s.exec(c, t)
		count++
	}
	// Phase 2: steal from the busiest peer until all spans drain. Remaining
	// work is re-read once per pass (not once per chunk): the chosen victim
	// is drained until its cursor passes its end, and a pass that yields
	// nothing — every claim lost against an already-drained victim — backs
	// off with Gosched instead of immediately rescanning every span.
	if s.stealing {
		stolen := int64(0)
		for {
			victim := -1
			var best int64
			for v := range s.spans {
				if v == t {
					continue
				}
				if rem := s.spans[v].end - s.spans[v].next.Load(); rem > best {
					best = rem
					victim = v
				}
			}
			if victim < 0 {
				break // every span drained
			}
			vs := &s.spans[victim]
			got := false
			for {
				c := vs.next.Add(1) - 1
				if c >= vs.end {
					break
				}
				s.exec(c, t)
				count++
				stolen++
				got = true
			}
			if !got {
				runtime.Gosched() // lost the race; yield before the next pass
			}
		}
		if stolen > 0 {
			s.steals.Add(stolen)
		}
	}
	s.perThread[t] = count
}

// RunOverlap executes fn over every mini-chunk of [lo, hi) like Run, but
// the dispatching goroutine does not compute: it drains completed chunks
// in ascending chunk order through drain while workers 1..threads-1
// execute (and steal) chunks. This is the overlap phase of the pipelined
// superstep — drain typically encodes and streams a chunk's deltas while
// the remaining chunks are still computing. drain(chunkLo, chunkHi) is
// called exactly once per chunk, strictly in ascending order, and only
// after fn finished that chunk (the completion flag's atomic store/load
// pair is the happens-before edge, so drain may freely read what fn
// wrote). With a single thread there is no spare worker: the dispatcher
// interleaves, computing each chunk and draining it immediately — the
// stream still leaves early, just without parallel overlap. Like every
// phase, fn must not re-enter the scheduler; drain runs on the dispatching
// goroutine and so may touch dispatcher-owned state (e.g. a Comm).
func (s *Scheduler) RunOverlap(lo, hi uint32, fn func(chunkLo, chunkHi uint32, thread int), drain func(chunkLo, chunkHi uint32)) Stats {
	if s.perThread == nil {
		s.perThread = make([]int64, s.threads)
		s.spans = make([]span, s.threads)
	}
	for t := range s.perThread {
		s.perThread[t] = 0
	}
	s.steals.Store(0)
	if hi <= lo {
		return Stats{ChunksPerThread: s.perThread}
	}
	nChunks := int64(hi-lo+ChunkSize-1) / ChunkSize
	s.lo, s.hi, s.fn = lo, hi, fn
	chunkBounds := func(c int64) (uint32, uint32) {
		clo := lo + uint32(c)*ChunkSize
		chi := clo + ChunkSize
		if chi > hi || chi < clo {
			chi = hi
		}
		return clo, chi
	}
	if s.threads <= 1 {
		for c := int64(0); c < nChunks; c++ {
			s.exec(c, 0)
			s.perThread[0]++
			drain(chunkBounds(c))
		}
		s.fn = nil
		return Stats{ChunksPerThread: s.perThread}
	}
	if int64(cap(s.flags)) < nChunks {
		s.flags = make([]atomic.Uint32, nChunks)
	} else {
		s.flags = s.flags[:nChunks]
		for i := range s.flags {
			s.flags[i].Store(0)
		}
	}
	if int64(cap(s.chunkDone)) < nChunks {
		s.chunkDone = make(chan int64, nChunks)
	}
	// The dispatcher's span is empty: workers 1..threads-1 share the chunks.
	w := int64(s.threads - 1)
	s.spans[0].next.Store(0)
	s.spans[0].end = 0
	for t := 1; t < s.threads; t++ {
		s.spans[t].next.Store(int64(t-1) * nChunks / w)
		s.spans[t].end = int64(t) * nChunks / w
	}
	s.ensurePool()
	s.mark = true
	s.body = s.runBody
	for t := 1; t < s.threads; t++ {
		s.wake[t] <- struct{}{}
	}
	// Drain in ascending chunk order, blocking on the completion channel
	// (not spinning) while the next chunk is still computing. A received
	// token only says "some chunk finished", so the cursor re-checks its
	// own flag; chunk c's own token guarantees the wait terminates. Every
	// token is consumed before the phase ends so the channel starts the
	// next phase empty.
	consumed := int64(0)
	for c := int64(0); c < nChunks; c++ {
		for s.flags[c].Load() == 0 {
			<-s.chunkDone
			consumed++
		}
		drain(chunkBounds(c))
	}
	for ; consumed < nChunks; consumed++ {
		<-s.chunkDone
	}
	for i := 1; i < s.threads; i++ {
		<-s.done
	}
	s.mark = false
	s.fn = nil
	return Stats{ChunksPerThread: s.perThread, Steals: s.steals.Load()}
}

// ParallelFor is a convenience wrapper calling fn once per vertex.
func (s *Scheduler) ParallelFor(lo, hi uint32, fn func(v uint32, thread int)) Stats {
	return s.Run(lo, hi, func(clo, chi uint32, thread int) {
		for v := clo; v < chi; v++ {
			fn(v, thread)
		}
	})
}

// ReduceI64 runs fn over every mini-chunk of [lo, hi) like Run and returns
// the sum of the per-chunk results. Each thread folds its chunks into a
// cache-line-padded local accumulator; the partials are summed after the
// barrier, so fn needs no synchronisation of its own.
func (s *Scheduler) ReduceI64(lo, hi uint32, fn func(chunkLo, chunkHi uint32, thread int) int64) (int64, Stats) {
	if s.acc == nil {
		s.acc = make([]paddedI64, s.threads)
	}
	for t := range s.acc {
		s.acc[t].v = 0
	}
	s.redFn = fn
	stats := s.Run(lo, hi, s.redWrap)
	s.redFn = nil
	var total int64
	for t := range s.acc {
		total += s.acc[t].v
	}
	return total, stats
}

// reduceChunk folds one chunk's result into the executing thread's padded
// accumulator.
func (s *Scheduler) reduceChunk(clo, chi uint32, th int) {
	s.acc[th].v += s.redFn(clo, chi, th)
}

// Tasks runs fn(task) for every task in [0, n) across the scheduler's
// threads, balancing through a shared atomic cursor. It is meant for small
// fixed task counts (per-thread buffers, per-rank merges) where Run's
// vertex-range chunking does not apply; fn must be safe to call
// concurrently for different tasks and must not re-enter the scheduler.
func (s *Scheduler) Tasks(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	workers := s.threads
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	s.taskN = int64(n)
	s.taskNext.Store(0)
	s.taskFn = fn
	s.dispatch(s.taskBody, workers)
	s.taskFn = nil
}

// taskWorker drains the shared task cursor.
func (s *Scheduler) taskWorker(int) {
	for {
		c := s.taskNext.Add(1) - 1
		if c >= s.taskN {
			return
		}
		s.taskFn(int(c))
	}
}
