// Package ws implements the fine-grained intra-node work-stealing scheduler
// of §3.6: each vertex range is split into mini-chunks of 256 vertices;
// every thread first drains its own statically assigned span of chunks
// through an atomic cursor, then steals remaining chunks from the busiest
// peer. Shared cursors are advanced with atomic fetch-and-add (the paper's
// __sync_fetch_and_* accesses).
package ws

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ChunkSize is the paper's mini-chunk granularity (§3.6: "each mini-chunk
// contains 256 vertices").
const ChunkSize = 256

// Stats reports one Run's distribution of work.
type Stats struct {
	ChunksPerThread []int64 // chunks executed by each thread
	Steals          int64   // chunks executed by a non-owner thread
}

// MaxSkew returns max/mean chunks per thread (1.0 = perfectly balanced).
func (s Stats) MaxSkew() float64 {
	if len(s.ChunksPerThread) == 0 {
		return 1
	}
	var max, sum int64
	for _, c := range s.ChunksPerThread {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(s.ChunksPerThread)) / float64(sum)
}

// Scheduler executes chunked parallel loops with optional stealing.
type Scheduler struct {
	threads  int
	stealing bool
}

// New returns a scheduler with the given thread count (<=0 means
// GOMAXPROCS) and stealing policy.
func New(threads int, stealing bool) *Scheduler {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{threads: threads, stealing: stealing}
}

// Threads returns the configured worker-thread count.
func (s *Scheduler) Threads() int { return s.threads }

// Stealing reports whether stealing is enabled.
func (s *Scheduler) Stealing() bool { return s.stealing }

// span is one thread's chunk assignment [next, end).
type span struct {
	next atomic.Int64
	end  int64
	_    [40]byte // avoid false sharing between spans
}

// Run executes fn over every mini-chunk of the vertex range [lo, hi).
// fn(chunkLo, chunkHi, thread) receives half-open vertex sub-ranges of at
// most ChunkSize vertices and the executing thread's id; it must be safe to
// call concurrently from different threads on disjoint ranges.
func (s *Scheduler) Run(lo, hi uint32, fn func(chunkLo, chunkHi uint32, thread int)) Stats {
	if hi <= lo {
		return Stats{ChunksPerThread: make([]int64, s.threads)}
	}
	nChunks := int64(hi-lo+ChunkSize-1) / ChunkSize
	spans := make([]*span, s.threads)
	for t := 0; t < s.threads; t++ {
		sp := &span{}
		start := int64(t) * nChunks / int64(s.threads)
		sp.next.Store(start)
		sp.end = int64(t+1) * nChunks / int64(s.threads)
		spans[t] = sp
	}

	perThread := make([]int64, s.threads)
	var steals atomic.Int64
	exec := func(chunk int64, thread int) {
		clo := lo + uint32(chunk)*ChunkSize
		chi := clo + ChunkSize
		if chi > hi || chi < clo { // clamp, and guard uint32 overflow
			chi = hi
		}
		fn(clo, chi, thread)
	}

	var wg sync.WaitGroup
	for t := 0; t < s.threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			own := spans[t]
			count := int64(0)
			// Phase 1: drain the thread's own span.
			for {
				c := own.next.Add(1) - 1
				if c >= own.end {
					break
				}
				exec(c, t)
				count++
			}
			// Phase 2: steal from the busiest peer until all spans drain.
			if s.stealing {
				for {
					victim := -1
					var best int64
					for v := 0; v < s.threads; v++ {
						if v == t {
							continue
						}
						if rem := spans[v].end - spans[v].next.Load(); rem > best {
							best = rem
							victim = v
						}
					}
					if victim < 0 {
						break
					}
					c := spans[victim].next.Add(1) - 1
					if c >= spans[victim].end {
						continue // lost the race; rescan
					}
					exec(c, t)
					count++
					steals.Add(1)
				}
			}
			perThread[t] = count
		}(t)
	}
	wg.Wait()
	return Stats{ChunksPerThread: perThread, Steals: steals.Load()}
}

// ParallelFor is a convenience wrapper calling fn once per vertex.
func (s *Scheduler) ParallelFor(lo, hi uint32, fn func(v uint32, thread int)) Stats {
	return s.Run(lo, hi, func(clo, chi uint32, thread int) {
		for v := clo; v < chi; v++ {
			fn(v, thread)
		}
	})
}

// paddedI64 keeps per-thread accumulators on separate cache lines.
type paddedI64 struct {
	v int64
	_ [56]byte
}

// ReduceI64 runs fn over every mini-chunk of [lo, hi) like Run and returns
// the sum of the per-chunk results. Each thread folds its chunks into a
// cache-line-padded local accumulator; the partials are summed after the
// barrier, so fn needs no synchronisation of its own.
func (s *Scheduler) ReduceI64(lo, hi uint32, fn func(chunkLo, chunkHi uint32, thread int) int64) (int64, Stats) {
	acc := make([]paddedI64, s.threads)
	stats := s.Run(lo, hi, func(clo, chi uint32, th int) {
		acc[th].v += fn(clo, chi, th)
	})
	var total int64
	for t := range acc {
		total += acc[t].v
	}
	return total, stats
}

// Tasks runs fn(task) for every task in [0, n) across the scheduler's
// threads, balancing through a shared atomic cursor. It is meant for small
// fixed task counts (per-thread buffers, per-rank merges) where Run's
// vertex-range chunking does not apply; fn must be safe to call
// concurrently for different tasks.
func (s *Scheduler) Tasks(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	workers := s.threads
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= int64(n) {
					return
				}
				fn(int(c))
			}
		}()
	}
	wg.Wait()
}
