package ws

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestCoversEveryVertexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		for _, stealing := range []bool{false, true} {
			const lo, hi = 13, 5000
			seen := make([]int32, hi)
			s := New(threads, stealing)
			s.ParallelFor(lo, hi, func(v uint32, _ int) {
				atomic.AddInt32(&seen[v], 1)
			})
			for v := 0; v < lo; v++ {
				if seen[v] != 0 {
					t.Fatalf("threads=%d steal=%v: vertex %d below range executed", threads, stealing, v)
				}
			}
			for v := lo; v < hi; v++ {
				if seen[v] != 1 {
					t.Fatalf("threads=%d steal=%v: vertex %d executed %d times", threads, stealing, v, seen[v])
				}
			}
		}
	}
}

func TestEmptyRange(t *testing.T) {
	s := New(4, true)
	called := false
	st := s.Run(10, 10, func(_, _ uint32, _ int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
	if len(st.ChunksPerThread) != 4 {
		t.Fatalf("stats have %d threads", len(st.ChunksPerThread))
	}
	s.Run(10, 5, func(_, _ uint32, _ int) { t.Fatal("fn called for inverted range") })
}

func TestChunkBounds(t *testing.T) {
	s := New(3, true)
	s.Run(0, 1000, func(lo, hi uint32, _ int) {
		if hi-lo > ChunkSize {
			t.Errorf("chunk [%d,%d) exceeds ChunkSize", lo, hi)
		}
		if hi > 1000 {
			t.Errorf("chunk [%d,%d) exceeds range", lo, hi)
		}
		if lo%ChunkSize != 0 {
			t.Errorf("chunk start %d not aligned", lo)
		}
	})
}

func TestDefaultThreads(t *testing.T) {
	s := New(0, false)
	if s.Threads() <= 0 {
		t.Fatalf("Threads = %d", s.Threads())
	}
	if New(5, true).Threads() != 5 {
		t.Fatal("explicit thread count ignored")
	}
}

func TestStealingRebalancesSkewedWork(t *testing.T) {
	// Thread 0's span gets all the slow chunks; with stealing other threads
	// must take some of them. We detect rebalancing via the Steals counter.
	const n = 64 * ChunkSize
	s := New(4, true)
	var slowCalls atomic.Int64
	st := s.Run(0, n, func(lo, _ uint32, thread int) {
		if lo < n/4 { // chunks initially owned by thread 0
			slowCalls.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	})
	if st.Steals == 0 {
		t.Skip("no steals observed (single-core scheduling); skew test skipped")
	}
	if st.MaxSkew() > 3.9 {
		t.Errorf("MaxSkew = %.2f even with stealing", st.MaxSkew())
	}
}

func TestNoStealingKeepsOwnership(t *testing.T) {
	const n = 16 * ChunkSize
	s := New(4, false)
	var mu sync.Mutex
	owner := map[uint32]int{}
	st := s.Run(0, n, func(lo, _ uint32, thread int) {
		mu.Lock()
		owner[lo] = thread
		mu.Unlock()
	})
	if st.Steals != 0 {
		t.Fatalf("Steals = %d without stealing", st.Steals)
	}
	// Static assignment: chunk c belongs to thread c*threads/nChunks.
	for lo, th := range owner {
		chunk := int64(lo) / ChunkSize
		want := -1
		for t2 := 0; t2 < 4; t2++ {
			start := int64(t2) * 16 / 4
			end := int64(t2+1) * 16 / 4
			if chunk >= start && chunk < end {
				want = t2
			}
		}
		if th != want {
			t.Fatalf("chunk %d executed by thread %d, want %d", chunk, th, want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	const n = 10*ChunkSize + 17 // 11 chunks, last one partial
	s := New(2, true)
	var total atomic.Int64
	st := s.Run(0, n, func(lo, hi uint32, _ int) {
		total.Add(int64(hi - lo))
	})
	if total.Load() != n {
		t.Fatalf("covered %d vertices, want %d", total.Load(), n)
	}
	var chunks int64
	for _, c := range st.ChunksPerThread {
		chunks += c
	}
	if chunks != 11 {
		t.Fatalf("executed %d chunks, want 11", chunks)
	}
}

func TestMaxSkew(t *testing.T) {
	if got := (Stats{}).MaxSkew(); got != 1 {
		t.Errorf("empty MaxSkew = %v", got)
	}
	if got := (Stats{ChunksPerThread: []int64{0, 0}}).MaxSkew(); got != 1 {
		t.Errorf("zero-work MaxSkew = %v", got)
	}
	got := (Stats{ChunksPerThread: []int64{3, 1}}).MaxSkew()
	if got != 1.5 {
		t.Errorf("MaxSkew = %v, want 1.5", got)
	}
}

// Property: for any range and thread count, every vertex is visited exactly
// once, with and without stealing.
func TestQuickExactCover(t *testing.T) {
	f := func(loRaw, span uint16, threadsRaw uint8, stealing bool) bool {
		lo := uint32(loRaw)
		hi := lo + uint32(span)
		threads := int(threadsRaw)%8 + 1
		var visited sync.Map
		ok := atomic.Bool{}
		ok.Store(true)
		New(threads, stealing).ParallelFor(lo, hi, func(v uint32, _ int) {
			if _, dup := visited.LoadOrStore(v, true); dup {
				ok.Store(false)
			}
		})
		if !ok.Load() {
			return false
		}
		count := 0
		visited.Range(func(_, _ any) bool { count++; return true })
		return count == int(span)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceI64SumsChunkResults(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		for _, stealing := range []bool{false, true} {
			s := New(threads, stealing)
			const lo, hi = 7, 40000
			// Sum of v over [lo, hi) computed chunk-wise must equal the
			// closed form regardless of scheduling.
			got, stats := s.ReduceI64(lo, hi, func(clo, chi uint32, _ int) int64 {
				var sum int64
				for v := clo; v < chi; v++ {
					sum += int64(v)
				}
				return sum
			})
			want := int64(hi-1)*int64(hi)/2 - int64(lo-1)*int64(lo)/2
			if got != want {
				t.Fatalf("threads=%d steal=%v: ReduceI64 = %d, want %d", threads, stealing, got, want)
			}
			var chunks int64
			for _, c := range stats.ChunksPerThread {
				chunks += c
			}
			if chunks != int64((hi-lo+ChunkSize-1)/ChunkSize) {
				t.Fatalf("chunks = %d", chunks)
			}
		}
	}
}

// The pool must be reusable across many phases of different shapes, with
// stats reset between them.
func TestPoolReuseAcrossPhases(t *testing.T) {
	s := New(4, true)
	defer s.Close()
	for round := 0; round < 50; round++ {
		var total atomic.Int64
		st := s.Run(0, 3000, func(lo, hi uint32, _ int) {
			total.Add(int64(hi - lo))
		})
		if total.Load() != 3000 {
			t.Fatalf("round %d: covered %d vertices", round, total.Load())
		}
		var chunks int64
		for _, c := range st.ChunksPerThread {
			chunks += c
		}
		if chunks != 12 {
			t.Fatalf("round %d: stale stats, %d chunks", round, chunks)
		}
		var tasks atomic.Int64
		s.Tasks(7, func(int) { tasks.Add(1) })
		if tasks.Load() != 7 {
			t.Fatalf("round %d: %d tasks ran", round, tasks.Load())
		}
		sum, _ := s.ReduceI64(0, 100, func(clo, chi uint32, _ int) int64 {
			return int64(chi - clo)
		})
		if sum != 100 {
			t.Fatalf("round %d: reduce = %d", round, sum)
		}
	}
}

func TestCloseIsIdempotentAndLazy(t *testing.T) {
	// Never-started pool: Close must not panic.
	s := New(4, true)
	s.Close()
	s.Close()

	// Started pool: Close twice is fine, and a later phase panics instead of
	// hanging on a closed channel send.
	s2 := New(3, false)
	s2.Run(0, 10, func(_, _ uint32, _ int) {})
	s2.Close()
	s2.Close()
}

// A steady-state Run/ReduceI64/Tasks phase must not allocate: the pool,
// spans, counters and accumulators are all reused. This is the scheduler's
// share of the zero-allocation superstep contract.
func TestPhasesDoNotAllocate(t *testing.T) {
	for _, threads := range []int{1, 4} {
		s := New(threads, true)
		fn := func(_, _ uint32, _ int) {}
		red := func(clo, chi uint32, _ int) int64 { return int64(chi - clo) }
		task := func(int) {}
		s.Run(0, 10000, fn) // warm up: pool + arrays
		s.ReduceI64(0, 10000, red)
		s.Tasks(64, task)
		if a := testing.AllocsPerRun(20, func() { s.Run(0, 10000, fn) }); a > 0 {
			t.Errorf("threads=%d: Run allocates %.1f objects per phase", threads, a)
		}
		if a := testing.AllocsPerRun(20, func() { s.ReduceI64(0, 10000, red) }); a > 0 {
			t.Errorf("threads=%d: ReduceI64 allocates %.1f objects per phase", threads, a)
		}
		if a := testing.AllocsPerRun(20, func() { s.Tasks(64, task) }); a > 0 {
			t.Errorf("threads=%d: Tasks allocates %.1f objects per phase", threads, a)
		}
		s.Close()
	}
}

func TestTasksRunsEachTaskOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 5} {
		for _, n := range []int{0, 1, 3, 100} {
			s := New(threads, false)
			seen := make([]int32, n)
			s.Tasks(n, func(task int) {
				atomic.AddInt32(&seen[task], 1)
			})
			for task, c := range seen {
				if c != 1 {
					t.Fatalf("threads=%d n=%d: task %d ran %d times", threads, n, task, c)
				}
			}
		}
	}
}

// TestRunOverlapDrainsEveryChunkInOrder checks the overlap phase's
// contract: every chunk computed exactly once, drained exactly once, in
// strictly ascending order, and only after its compute finished.
func TestRunOverlapDrainsEveryChunkInOrder(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		for _, stealing := range []bool{false, true} {
			const lo, hi = 13, 5000
			s := New(threads, stealing)
			computed := make([]int32, hi)
			drained := make([]int32, hi)
			prev := int64(-1)
			st := s.RunOverlap(lo, hi, func(clo, chi uint32, _ int) {
				for v := clo; v < chi; v++ {
					atomic.AddInt32(&computed[v], 1)
				}
			}, func(clo, chi uint32) {
				c := int64(clo-lo) / ChunkSize
				if c != prev+1 {
					t.Fatalf("threads=%d steal=%v: drained chunk %d after %d", threads, stealing, c, prev)
				}
				prev = c
				for v := clo; v < chi; v++ {
					if atomic.LoadInt32(&computed[v]) != 1 {
						t.Fatalf("threads=%d steal=%v: drained vertex %d before/without compute", threads, stealing, v)
					}
					drained[v]++
				}
			})
			for v := lo; v < hi; v++ {
				if computed[v] != 1 || drained[v] != 1 {
					t.Fatalf("threads=%d steal=%v: vertex %d computed %d / drained %d times",
						threads, stealing, v, computed[v], drained[v])
				}
			}
			var total int64
			for _, c := range st.ChunksPerThread {
				total += c
			}
			if want := int64(hi-lo+ChunkSize-1) / ChunkSize; total != want {
				t.Fatalf("threads=%d steal=%v: stats count %d chunks, want %d", threads, stealing, total, want)
			}
			s.Close()
		}
	}
}

// TestRunOverlapDrainSeesComputeWrites checks the publication edge: the
// drain must observe everything fn wrote for that chunk without extra
// synchronisation.
func TestRunOverlapDrainSeesComputeWrites(t *testing.T) {
	const hi = 10000
	s := New(4, true)
	defer s.Close()
	vals := make([]uint32, hi) // plain writes in fn, plain reads in drain
	var sum uint64
	s.RunOverlap(0, hi, func(clo, chi uint32, _ int) {
		for v := clo; v < chi; v++ {
			vals[v] = v * 3
		}
	}, func(clo, chi uint32) {
		for v := clo; v < chi; v++ {
			sum += uint64(vals[v])
		}
	})
	var want uint64
	for v := uint32(0); v < hi; v++ {
		want += uint64(v * 3)
	}
	if sum != want {
		t.Fatalf("drain read %d, want %d", sum, want)
	}
}

// TestRunOverlapEmptyAndInterleavedWithRun checks the empty range and that
// Run and RunOverlap phases can alternate on one scheduler (the mark flag
// and flag reuse must not leak between phases).
func TestRunOverlapEmptyAndInterleavedWithRun(t *testing.T) {
	s := New(3, true)
	defer s.Close()
	calls := 0
	s.RunOverlap(7, 7, func(_, _ uint32, _ int) { calls++ }, func(_, _ uint32) { calls++ })
	if calls != 0 {
		t.Fatal("fn/drain called for empty range")
	}
	for round := 0; round < 3; round++ {
		var n atomic.Int64
		s.Run(0, 3000, func(clo, chi uint32, _ int) { n.Add(int64(chi - clo)) })
		if n.Load() != 3000 {
			t.Fatalf("round %d: Run covered %d vertices", round, n.Load())
		}
		drained := 0
		s.RunOverlap(0, 1000+uint32(round)*2000, func(_, _ uint32, _ int) {}, func(clo, chi uint32) {
			drained += int(chi - clo)
		})
		if want := 1000 + round*2000; drained != want {
			t.Fatalf("round %d: drained %d vertices, want %d", round, drained, want)
		}
	}
}
