package main

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// The daemon's listener must carry read/idle deadlines: without them one
// slow client holds a connection (and eventually a file descriptor pool)
// forever.
func TestServerHasConnectionTimeouts(t *testing.T) {
	srv := newServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris headers hold connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: slow request bodies hold connections forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections are never reaped")
	}
}

// A client that opens a connection and never finishes its headers must be
// disconnected once ReadHeaderTimeout elapses (tightened here so the test
// is fast; the enforcement path is the same).
func TestSlowClientIsDisconnected(t *testing.T) {
	srv := newServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.ReadHeaderTimeout = 150 * time.Millisecond
	srv.ReadTimeout = 150 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble an incomplete request and stall: never send the final CRLF.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // server gave up on us: connection closed (or reset)
		}
	}
}
