// Command slfe-serve hosts a graph as a resident service: the graph stays
// in memory across mutation batches, redundancy-reduction guidance is
// maintained incrementally, and registered applications re-execute
// warm-started from their previous results instead of from scratch.
//
// Usage:
//
//	slfe-serve -addr :8080 -dataset PK -scale 4000 -apps sssp:f64,pr:f64
//	slfe-serve -graph graph.slfg -apps cc:u32 -nodes 4 -threads 2
//
// Endpoints:
//
//	GET  /healthz                       liveness + current graph version
//	GET  /stats                         graph, program and mutation stats
//	GET  /result?app=&domain=&vertex=   one value at one vertex
//	POST /mutate                        {"add_vertices":N,"add":[...],"del":[...]}
//	POST /register                      {"app":"sssp","domain":"f64","root":0}
//
// SIGINT/SIGTERM drain the listener and shut the resident cluster down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	path := flag.String("graph", "", "graph file (text or .slfg)")
	dataset := flag.String("dataset", "", "Table 4 dataset code instead of -graph (PK OK LJ WK DI ST FS RMAT)")
	scale := flag.Int("scale", 1000, "dataset down-scale factor")
	appsFlag := flag.String("apps", "", "programs to register at startup, comma-separated key:domain pairs (e.g. sssp:f64,cc:u32)")
	root := flag.Uint("root", 0, "root vertex for rooted programs")
	iters := flag.Int("iters", 10, "iterations for arithmetic programs")
	nodes := flag.Int("nodes", 1, "resident cluster size")
	threads := flag.Int("threads", 0, "threads per node (0 = GOMAXPROCS)")
	rr := flag.Bool("rr", true, "enable redundancy reduction (incrementally maintained)")
	stealing := flag.Bool("stealing", true, "enable work stealing")
	syncName := flag.String("sync", "dense", "delta-sync strategy: dense | sparse | adaptive")
	flag.Parse()

	if err := run(*addr, *path, *dataset, *scale, *appsFlag, *root, *iters, *nodes, *threads, *rr, *stealing, *syncName); err != nil {
		fmt.Fprintf(os.Stderr, "slfe-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, path, dataset string, scale int, appsFlag string, root uint, iters, nodes, threads int, rr, stealing bool, syncName string) error {
	if nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1 (got %d)", nodes)
	}
	sync, err := core.ParseSyncStrategy(syncName)
	if err != nil {
		return err
	}
	g, err := loadGraph(path, dataset, scale)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %v\n", g)

	svc, err := service.New(g, service.Config{
		Nodes: nodes, Threads: threads, Stealing: stealing, RR: rr, Sync: sync,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	for _, spec := range splitApps(appsFlag) {
		key, domain, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-apps entry %q is not key:domain", spec)
		}
		start := time.Now()
		snap, err := svc.Register(key, domain, graph.VertexID(root), iters)
		if err != nil {
			return err
		}
		fmt.Printf("registered %s (version %d, %v)\n", service.ProgramID(key, domain), snap.Version, time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.Handler(svc)}
	fmt.Printf("slfe-serve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("slfe-serve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return svc.Close()
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func splitApps(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func loadGraph(path, dataset string, scale int) (*graph.Graph, error) {
	if path != "" {
		return loader.LoadFile(path)
	}
	if dataset != "" {
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Proxy(scale), nil
	}
	return nil, fmt.Errorf("one of -graph or -dataset is required")
}
