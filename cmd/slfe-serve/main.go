// Command slfe-serve hosts a graph as a resident service: the graph stays
// in memory across mutation batches, redundancy-reduction guidance is
// maintained incrementally, and registered applications re-execute
// warm-started from their previous results instead of from scratch —
// concurrently, over a bounded session pool.
//
// Usage:
//
//	slfe-serve -addr :8080 -dataset PK -scale 4000 -apps sssp:f64,pr:f64
//	slfe-serve -graph graph.slfg -apps cc:u32 -nodes 4 -threads 2 -sessions 4
//
// Endpoints:
//
//	GET  /healthz                       liveness + current graph version
//	GET  /stats                         graph, program, mutation, cache and admission stats
//	GET  /result?app=&domain=&vertex=   one value at one vertex
//	GET  /topk?app=&domain=&k=&order=   k best vertices by value (version-cached)
//	GET  /route?app=&domain=&from=&to=  shortest path from a dist32 parent tree (version-cached)
//	POST /mutate                        {"add_vertices":N,"add":[...],"del":[...]}
//	POST /register                      {"app":"sssp","domain":"f64","root":0}
//
// SIGINT/SIGTERM drain the listener and shut the resident cluster down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/service"
)

// serveConfig collects the daemon's flag surface.
type serveConfig struct {
	addr    string
	path    string
	dataset string
	scale   int
	apps    string
	root    uint
	iters   int

	nodes    int
	threads  int
	rr       bool
	stealing bool
	syncName string

	sessions      int
	cacheCapacity int
	mutationQueue int
	readInflight  int
}

func main() {
	var c serveConfig
	flag.StringVar(&c.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&c.path, "graph", "", "graph file (text or .slfg)")
	flag.StringVar(&c.dataset, "dataset", "", "Table 4 dataset code instead of -graph (PK OK LJ WK DI ST FS RMAT)")
	flag.IntVar(&c.scale, "scale", 1000, "dataset down-scale factor")
	flag.StringVar(&c.apps, "apps", "", "programs to register at startup, comma-separated key:domain pairs (e.g. sssp:f64,cc:u32)")
	flag.UintVar(&c.root, "root", 0, "root vertex for rooted programs")
	flag.IntVar(&c.iters, "iters", 10, "iterations for arithmetic programs")
	flag.IntVar(&c.nodes, "nodes", 1, "resident cluster size")
	flag.IntVar(&c.threads, "threads", 0, "threads per node (0 = GOMAXPROCS)")
	flag.BoolVar(&c.rr, "rr", true, "enable redundancy reduction (incrementally maintained)")
	flag.BoolVar(&c.stealing, "stealing", true, "enable work stealing")
	flag.StringVar(&c.syncName, "sync", "dense", "delta-sync strategy: dense | sparse | adaptive")
	flag.IntVar(&c.sessions, "sessions", 2, "session pool size (concurrent program executions)")
	flag.IntVar(&c.cacheCapacity, "cache", 4096, "read-cache capacity in entries (negative disables)")
	flag.IntVar(&c.mutationQueue, "mutation-queue", 4, "bounded mutation queue depth before 429")
	flag.IntVar(&c.readInflight, "read-inflight", 256, "per-endpoint in-flight read bound before 429")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintf(os.Stderr, "slfe-serve: %v\n", err)
		os.Exit(1)
	}
}

// newServer builds the daemon's http.Server with the connection hygiene a
// public listener needs: header/body read deadlines and an idle timeout, so
// one slow client (slowloris) cannot pin a connection forever. There is
// deliberately no WriteTimeout — a mutation batch legitimately re-executes
// programs for seconds before its response starts.
func newServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

func run(c serveConfig) error {
	if c.nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1 (got %d)", c.nodes)
	}
	sync, err := core.ParseSyncStrategy(c.syncName)
	if err != nil {
		return err
	}
	g, err := loadGraph(c.path, c.dataset, c.scale)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %v\n", g)

	svc, err := service.New(g, service.Config{
		Nodes: c.nodes, Threads: c.threads, Stealing: c.stealing, RR: c.rr, Sync: sync,
		Sessions:      c.sessions,
		CacheCapacity: c.cacheCapacity,
		MutationQueue: c.mutationQueue,
		ReadInflight:  c.readInflight,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	for _, spec := range splitApps(c.apps) {
		key, domain, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-apps entry %q is not key:domain", spec)
		}
		start := time.Now()
		snap, err := svc.Register(key, domain, graph.VertexID(c.root), c.iters)
		if err != nil {
			return err
		}
		fmt.Printf("registered %s (version %d, %v)\n", service.ProgramID(key, domain), snap.Version, time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := newServer(service.Handler(svc))
	fmt.Printf("slfe-serve: listening on %s (sessions=%d cache=%d)\n", ln.Addr(), c.sessions, c.cacheCapacity)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("slfe-serve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return svc.Close()
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func splitApps(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func loadGraph(path, dataset string, scale int) (*graph.Graph, error) {
	if path != "" {
		return loader.LoadFile(path)
	}
	if dataset != "" {
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Proxy(scale), nil
	}
	return nil, fmt.Errorf("one of -graph or -dataset is required")
}
