// Command slfe-run executes one graph application on one graph with the
// SLFE engine (or a baseline) on a simulated cluster.
//
// Usage:
//
//	slfe-run -app sssp -graph graph.slfg -nodes 8 -rr
//	slfe-run -app pr -dataset FS -scale 1000 -iters 30 -system powergraph
//
// It prints the runtime, per-iteration statistics and a sample of results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"slfe/internal/apps"
	"slfe/internal/baseline/async"
	"slfe/internal/baseline/gas"
	"slfe/internal/baseline/ligra"
	"slfe/internal/baseline/ooc"
	"slfe/internal/cluster"
	"slfe/internal/compress"
	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/metrics"
)

func main() {
	app := flag.String("app", "sssp", "application: sssp | bfs | cc | wp | pr | tr | spmv | numpaths | heat | bp | triangles | kcore | clique | mst | diameter")
	path := flag.String("graph", "", "graph file (text or .slfg)")
	dataset := flag.String("dataset", "", "Table 4 dataset code instead of -graph (PK OK LJ WK DI ST FS RMAT)")
	scale := flag.Int("scale", 1000, "dataset down-scale factor")
	system := flag.String("system", "slfe", "engine: slfe | powergraph | powerlyra | graphchi | ligra | async")
	nodes := flag.Int("nodes", 1, "cluster size (slfe/powergraph/powerlyra)")
	threads := flag.Int("threads", 0, "threads per node (0 = GOMAXPROCS)")
	rr := flag.Bool("rr", true, "enable redundancy reduction (slfe)")
	stealing := flag.Bool("stealing", true, "enable work stealing (slfe)")
	codecName := flag.String("codec", "raw", "delta-sync wire codec: raw | varint-xor | rle | adaptive (slfe)")
	syncName := flag.String("sync", "dense", "delta-sync strategy: dense | sparse | adaptive (slfe)")
	sparseDiv := flag.Int64("sparse-divisor", 0, "adaptive sync goes sparse when changed*divisor < |V| (0 = default 16)")
	serialSync := flag.Bool("serial-sync", false, "disable overlapped delta-sync streaming; run sync strictly after the compute barrier (slfe, differential oracle)")
	rebalance := flag.Bool("rebalance", false, "enable dynamic inter-node rebalancing (slfe)")
	root := flag.Uint("root", 0, "root vertex for sssp/bfs/wp/numpaths")
	iters := flag.Int("iters", 30, "iterations for arithmetic apps")
	verbose := flag.Bool("v", false, "print per-iteration statistics")
	flag.Parse()

	if *nodes < 1 {
		fatal(fmt.Errorf("-nodes must be at least 1 (got %d)", *nodes))
	}
	if *threads < 0 {
		fatal(fmt.Errorf("-threads must be non-negative (got %d)", *threads))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("-scale must be at least 1 (got %d)", *scale))
	}
	if *iters < 1 {
		fatal(fmt.Errorf("-iters must be at least 1 (got %d)", *iters))
	}

	g, err := loadGraph(*path, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	codec, err := compress.ByName(*codecName)
	if err != nil {
		fatal(err)
	}
	sync, err := core.ParseSyncStrategy(*syncName)
	if err != nil {
		fatal(err)
	}
	if *sparseDiv < 0 {
		fatal(fmt.Errorf("-sparse-divisor must be non-negative (got %d)", *sparseDiv))
	}
	opt := cluster.Options{Nodes: *nodes, Threads: *threads, Stealing: *stealing, RR: *rr,
		Codec: codec, Sync: sync, SparseDivisor: *sparseDiv, SerialSync: *serialSync, Rebalance: *rebalance}
	if runAnalytics(strings.ToLower(*app), g, graph.VertexID(*root), opt) {
		return
	}

	prog, g, err := buildProgram(*app, g, graph.VertexID(*root), *iters)
	if err != nil {
		fatal(err)
	}

	var values []core.Value
	var run *metrics.Run
	switch strings.ToLower(*system) {
	case "slfe":
		res, err := cluster.Execute(g, prog, opt)
		if err != nil {
			fatal(err)
		}
		values = res.Result.Values
		run = metrics.Merge(res.PerWorker)
		fmt.Printf("system: SLFE (rr=%v) nodes=%d elapsed=%v preprocess=%v comm=%d msgs / %d bytes\n",
			*rr, *nodes, res.Elapsed, res.PreprocessTime, res.Comm.MessagesSent, res.Comm.BytesSent)
		fmt.Printf("delta-sync: strategy=%v supersteps dense=%d sparse=%d overlapped=%d flush=%dB codec-picks=%s\n",
			sync, run.DenseSyncs, run.SparseSyncs, run.OverlappedSyncs, run.FlushBytes, formatPicks(run.CodecPicks))
		var streamed, syncB int64
		for _, s := range run.Iters {
			streamed += s.StreamedBytes
			syncB += s.SyncBytes
		}
		if syncB > 0 {
			fmt.Printf("overlap: streamed %dB of %dB sync traffic during compute (ratio %.2f)\n",
				streamed, syncB, float64(streamed)/float64(syncB))
		}
	case "powergraph", "powerlyra":
		mode := gas.PowerGraph
		if strings.ToLower(*system) == "powerlyra" {
			mode = gas.PowerLyra
		}
		res, _, stats, err := gas.Execute(g, prog, *nodes, mode, *threads)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: %v nodes=%d elapsed=%v comm=%d msgs / %d bytes\n",
			mode, *nodes, res.Metrics.Total, stats.MessagesSent, stats.BytesSent)
	case "graphchi":
		dir, err := os.MkdirTemp("", "slfe-run-ooc-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		eng, err := ooc.Build(g, dir, 8)
		if err != nil {
			fatal(err)
		}
		res, err := eng.Run(prog)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: GraphChi-proxy elapsed=%v diskIO=%d bytes\n", res.Metrics.Total, res.BytesRead)
	case "ligra":
		res, err := ligra.Execute(g, prog, *threads)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: Ligra-proxy elapsed=%v\n", res.Metrics.Total)
	case "async":
		res, _, err := async.Execute(g, prog, *nodes)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: async nodes=%d rounds=%d elapsed=%v comm=%d msgs / %d bytes\n",
			*nodes, res.Rounds, res.Metrics.Total, res.Comm.MessagesSent, res.Comm.BytesSent)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	fmt.Printf("iterations=%d computations=%d updates=%d suppressed=%d\n",
		len(run.Iters), run.Computations(), run.Updates(), run.Suppressed())
	if *verbose {
		for _, s := range run.Iters {
			fmt.Printf("  iter=%-3d mode=%-4s active=%-8d comps=%-10d updates=%-8d suppressed=%d\n",
				s.Iter, s.Mode, s.ActiveVerts, s.Computations, s.Updates, s.Suppressed)
		}
	}
	printSample(*app, g, values)
}

func loadGraph(path, dataset string, scale int) (*graph.Graph, error) {
	if path != "" {
		return loader.LoadFile(path)
	}
	if dataset != "" {
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Proxy(scale), nil
	}
	return nil, fmt.Errorf("one of -graph or -dataset is required")
}

// buildProgram returns the program and (for CC) the symmetrised graph.
func buildProgram(app string, g *graph.Graph, root graph.VertexID, iters int) (*core.Program, *graph.Graph, error) {
	switch strings.ToLower(app) {
	case "sssp":
		return apps.SSSP(root), g, nil
	case "bfs":
		return apps.BFS(root), g, nil
	case "cc":
		sym := apps.Symmetrize(g)
		return apps.CC(sym), sym, nil
	case "wp":
		return apps.WP(root), g, nil
	case "pr":
		return apps.PageRank(iters), g, nil
	case "tr":
		return apps.TunkRank(iters), g, nil
	case "spmv":
		return apps.SpMV(iters), g, nil
	case "numpaths":
		return apps.NumPaths(root, iters), g, nil
	case "heat":
		return apps.HeatSimulation([]graph.VertexID{root}, iters), g, nil
	case "bp":
		// Demo priors: the root holds positive evidence.
		prior := func(_ *graph.Graph, v graph.VertexID) core.Value {
			if v == root {
				return 2
			}
			return 0
		}
		return apps.BeliefPropagation(prior, apps.BeliefCoupling, iters), g, nil
	}
	return nil, nil, fmt.Errorf("unknown app %q", app)
}

// runAnalytics handles the applications that are whole-graph analyses
// rather than vertex-property programs. It reports whether app was handled.
func runAnalytics(app string, g *graph.Graph, root graph.VertexID, opt cluster.Options) bool {
	switch app {
	case "triangles":
		st, err := apps.TriangleCount(g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("triangles: %d (comm %d msgs / %d bytes)\n", st.Triangles, st.Comm.MessagesSent, st.Comm.BytesSent)
	case "kcore":
		cores, err := apps.KCore(g, opt)
		if err != nil {
			fatal(err)
		}
		hist := map[uint32]int{}
		maxCore := uint32(0)
		for _, c := range cores {
			hist[c]++
			if c > maxCore {
				maxCore = c
			}
		}
		fmt.Printf("max coreness: %d\n", maxCore)
		for k := uint32(0); k <= maxCore; k++ {
			if hist[k] > 0 {
				fmt.Printf("  core %d: %d vertices\n", k, hist[k])
			}
		}
	case "clique":
		cl, err := apps.MaxCliqueApprox(g, 32, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("clique: size %d (k-core bound %d) members %v\n", len(cl.Members), cl.CoreBound, cl.Members)
	case "mst":
		f, err := apps.MST(g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum spanning forest: %d edges, weight %.3f, %d Borůvka rounds\n", len(f.Edges), f.Weight, f.Rounds)
	case "diameter":
		samples := []graph.VertexID{root}
		for i := 1; i < 8 && i < g.NumVertices(); i++ {
			samples = append(samples, graph.VertexID(i*(g.NumVertices()/8)))
		}
		d, err := apps.ApproxDiameter(g, samples, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("approximate diameter (lower bound from %d BFS samples): %d\n", len(samples), d)
	default:
		return false
	}
	return true
}

func printSample(app string, g *graph.Graph, values []core.Value) {
	if len(values) == 0 {
		return
	}
	switch strings.ToLower(app) {
	case "pr", "tr":
		scores := values
		if strings.ToLower(app) == "pr" {
			scores = apps.PageRankScores(g, values)
		} else {
			scores = apps.TunkRankScores(g, values)
		}
		type kv struct {
			v graph.VertexID
			s core.Value
		}
		top := make([]kv, 0, len(scores))
		for v, s := range scores {
			top = append(top, kv{graph.VertexID(v), s})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })
		fmt.Println("top 5 vertices:")
		for i := 0; i < 5 && i < len(top); i++ {
			fmt.Printf("  #%d vertex %d score %.6f\n", i+1, top[i].v, top[i].s)
		}
	default:
		fmt.Println("first 10 values:")
		for v := 0; v < 10 && v < len(values); v++ {
			fmt.Printf("  vertex %d: %g\n", v, values[v])
		}
	}
}

// formatPicks renders the codec-choice counts in stable name order.
func formatPicks(picks map[string]int64) string {
	if len(picks) == 0 {
		return "none"
	}
	names := make([]string, 0, len(picks))
	for n := range picks {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, picks[n])
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slfe-run:", err)
	os.Exit(1)
}
