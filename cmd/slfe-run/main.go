// Command slfe-run executes one graph application on one graph with the
// SLFE engine (or a baseline) on a simulated cluster.
//
// Usage:
//
//	slfe-run -app sssp -graph graph.slfg -nodes 8 -rr
//	slfe-run -app pr -dataset FS -scale 1000 -iters 30 -system powergraph
//	slfe-run -app pr -dataset FS -domain f32              # half-width wire/values
//	slfe-run -app cc -dataset OK -domain u32              # exact integer labels
//
// It prints the runtime, per-iteration statistics and a sample of results.
// Run with -help for the registered application × value-domain matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"slfe/internal/apps"
	"slfe/internal/baseline/async"
	"slfe/internal/baseline/gas"
	"slfe/internal/baseline/ligra"
	"slfe/internal/baseline/ooc"
	"slfe/internal/cluster"
	"slfe/internal/compress"
	"slfe/internal/core"
	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/metrics"
)

// domainWidth resolves a value-domain name to its wire word width via the
// authoritative core mapping.
func domainWidth(domain string) (int, error) {
	if w, ok := core.WidthOf(domain); ok {
		return w, nil
	}
	return 0, fmt.Errorf("unknown value domain %q (want f64 | f32 | u32 | dist32)", domain)
}

func main() {
	app := flag.String("app", "sssp", "application: see the registered-applications table in -help (plus triangles | kcore | clique | mst | diameter)")
	domain := flag.String("domain", "f64", "value domain: f64 (original, 8-byte) | f32 (paper-faithful, 4-byte) | u32 (exact integer labels) | dist32 (SSSP distance+parent tree)")
	path := flag.String("graph", "", "graph file (text, .slfg, or .slfc compressed CSR)")
	memBudget := flag.Int64("mem-budget", 0, "memory budget in bytes for .slfc graphs: 0 mmaps the file; a positive budget smaller than the file switches to out-of-core supersteps (block streaming via pread)")
	dataset := flag.String("dataset", "", "Table 4 dataset code instead of -graph (PK OK LJ WK DI ST FS RMAT)")
	scale := flag.Int("scale", 1000, "dataset down-scale factor")
	system := flag.String("system", "slfe", "engine: slfe | powergraph | powerlyra | graphchi | ligra | async (baselines run the f64 domain only)")
	nodes := flag.Int("nodes", 1, "cluster size (slfe/powergraph/powerlyra)")
	threads := flag.Int("threads", 0, "threads per node (0 = GOMAXPROCS)")
	rr := flag.Bool("rr", true, "enable redundancy reduction (slfe)")
	stealing := flag.Bool("stealing", true, "enable work stealing (slfe)")
	codecName := flag.String("codec", "raw", "delta-sync wire codec: raw | varint-xor | rle | adaptive (slfe; built at the domain's word width)")
	syncName := flag.String("sync", "dense", "delta-sync strategy: dense | sparse | adaptive (slfe)")
	sparseDiv := flag.Int64("sparse-divisor", 0, "adaptive sync goes sparse when changed*divisor < |V| (0 = default 16)")
	serialSync := flag.Bool("serial-sync", false, "disable overlapped delta-sync streaming; run sync strictly after the compute barrier (slfe, differential oracle)")
	rebalance := flag.Bool("rebalance", false, "enable dynamic inter-node rebalancing (slfe)")
	root := flag.Uint("root", 0, "root vertex for sssp/bfs/wp/numpaths")
	iters := flag.Int("iters", 30, "iterations for arithmetic apps")
	ft := flag.Bool("ft", false, "enable rank-failure tolerance: heartbeat detection, buddy-replicated checkpoints, automatic recovery (slfe)")
	ftDir := flag.String("ft-dir", "", "base directory for per-rank checkpoint shards (default: a temporary directory)")
	ftEvery := flag.Int("ft-every", 8, "checkpoint interval in supersteps under -ft")
	ftInterval := flag.Duration("ft-interval", 0, "heartbeat probe period under -ft (0 = 25ms)")
	ftDead := flag.Duration("ft-dead", 0, "silence after which a rank is declared dead under -ft (0 = 10x the probe period)")
	ftTCP := flag.Bool("ft-tcp", false, "run membership epochs over a real loopback TCP mesh under -ft")
	ftRejoin := flag.Bool("ft-rejoin", false, "enable elastic re-expansion under -ft: restart dead ranks and grow them back into the next epoch (requires -ft-tcp)")
	ftRejoinWindow := flag.Duration("ft-rejoin-window", 0, "how long a recovery transition waits for restarted ranks under -ft-rejoin (0 = 2s)")
	verbose := flag.Bool("v", false, "print per-iteration statistics")
	flag.Usage = usage
	flag.Parse()

	if *nodes < 1 {
		fatal(fmt.Errorf("-nodes must be at least 1 (got %d)", *nodes))
	}
	if *threads < 0 {
		fatal(fmt.Errorf("-threads must be non-negative (got %d)", *threads))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("-scale must be at least 1 (got %d)", *scale))
	}
	if *iters < 1 {
		fatal(fmt.Errorf("-iters must be at least 1 (got %d)", *iters))
	}
	width, err := domainWidth(*domain)
	if err != nil {
		fatal(err)
	}

	if *memBudget < 0 {
		fatal(fmt.Errorf("-mem-budget must be non-negative (got %d)", *memBudget))
	}
	g, closeG, err := loadGraph(*path, *dataset, *scale, *memBudget)
	if err != nil {
		fatal(err)
	}
	defer closeG()
	fmt.Printf("graph: %v\n", g)

	codec, err := compress.ByNameW(*codecName, width)
	if err != nil {
		fatal(err)
	}
	sync, err := core.ParseSyncStrategy(*syncName)
	if err != nil {
		fatal(err)
	}
	if *sparseDiv < 0 {
		fatal(fmt.Errorf("-sparse-divisor must be non-negative (got %d)", *sparseDiv))
	}
	opt := cluster.Options{Nodes: *nodes, Threads: *threads, Stealing: *stealing, RR: *rr,
		Codec: codec, Sync: sync, SparseDivisor: *sparseDiv, SerialSync: *serialSync, Rebalance: *rebalance}
	if *ft {
		dir := *ftDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "slfe-ft-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		opt.FT = &cluster.FTOptions{
			HeartbeatInterval: *ftInterval,
			DeadAfter:         *ftDead,
			CkptDir:           dir,
			CkptEvery:         *ftEvery,
			TCPLoopback:       *ftTCP,
			Rejoin:            *ftRejoin,
			RejoinWindow:      *ftRejoinWindow,
		}
	}
	appKey := strings.ToLower(*app)
	if runAnalytics(appKey, g, graph.VertexID(*root), opt) {
		return
	}

	var values []float64
	var run *metrics.Run
	switch strings.ToLower(*system) {
	case "slfe":
		entry, ok := apps.LookupRunnable(appKey, *domain)
		if !ok {
			if doms := apps.RunnableDomains(appKey); len(doms) > 0 {
				fatal(fmt.Errorf("application %q is not registered for domain %q (available: %s)",
					appKey, *domain, strings.Join(doms, " ")))
			}
			fatal(fmt.Errorf("unknown application %q; run with -help for the registered table", appKey))
		}
		runG := g
		if entry.NeedsSym {
			runG = apps.Symmetrize(g)
		}
		out, err := entry.Build(graph.VertexID(*root), *iters).Execute(runG, opt)
		if err != nil {
			fatal(err)
		}
		g = runG
		values = out.Values
		run = metrics.Merge(out.PerWorker)
		fmt.Printf("system: SLFE (rr=%v domain=%s width=%dB) nodes=%d elapsed=%v preprocess=%v comm=%d msgs / %d bytes\n",
			*rr, *domain, width, *nodes, out.Elapsed, out.Preprocess, out.Comm.MessagesSent, out.Comm.BytesSent)
		if rep := out.Recovery; rep != nil {
			if len(rep.Deaths) == 0 {
				fmt.Printf("fault-tolerance: epochs=%d no failures detected\n", rep.Epochs)
			} else {
				fmt.Printf("fault-tolerance: epochs=%d deaths=%v resume-iter=%d replayed=%d recover=%v replica=%v\n",
					rep.Epochs, rep.Deaths, rep.ResumeIter, rep.ReplayedSupersteps, rep.RecoverTime, rep.RestoredFromReplica)
				if len(rep.Rejoined) > 0 {
					fmt.Printf("rejoin: ranks=%v rejoin=%v redistributed=%dB final-members=%d\n",
						rep.Rejoined, rep.RejoinTime, rep.RedistributedBytes, rep.FinalMembers)
				} else if rep.Degraded {
					fmt.Printf("rejoin: degraded — no rank made the window; continuing with %d members\n", rep.FinalMembers)
				}
			}
		}
		fmt.Printf("delta-sync: strategy=%v supersteps dense=%d sparse=%d overlapped=%d flush=%dB codec-picks=%s\n",
			sync, run.DenseSyncs, run.SparseSyncs, run.OverlappedSyncs, run.FlushBytes, formatPicks(run.CodecPicks))
		var streamed, syncB int64
		for _, s := range run.Iters {
			streamed += s.StreamedBytes
			syncB += s.SyncBytes
		}
		if syncB > 0 {
			fmt.Printf("overlap: streamed %dB of %dB sync traffic during compute (ratio %.2f)\n",
				streamed, syncB, float64(streamed)/float64(syncB))
		}
	case "powergraph", "powerlyra":
		prog, runG := baselineProgram(appKey, g, graph.VertexID(*root), *iters, *domain)
		hg := heap(runG)
		g = hg
		mode := gas.PowerGraph
		if strings.ToLower(*system) == "powerlyra" {
			mode = gas.PowerLyra
		}
		res, _, stats, err := gas.Execute(hg, prog, *nodes, mode, *threads)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: %v nodes=%d elapsed=%v comm=%d msgs / %d bytes\n",
			mode, *nodes, res.Metrics.Total, stats.MessagesSent, stats.BytesSent)
	case "graphchi":
		prog, runG := baselineProgram(appKey, g, graph.VertexID(*root), *iters, *domain)
		g = runG
		dir, err := os.MkdirTemp("", "slfe-run-ooc-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		// ooc shards from any View, so a disk-backed graph stays on disk.
		eng, err := ooc.Build(g, dir, 8)
		if err != nil {
			fatal(err)
		}
		res, err := eng.Run(prog)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: GraphChi-proxy elapsed=%v diskIO=%d bytes\n", res.Metrics.Total, res.BytesRead)
	case "ligra":
		prog, runG := baselineProgram(appKey, g, graph.VertexID(*root), *iters, *domain)
		hg := heap(runG)
		g = hg
		res, err := ligra.Execute(hg, prog, *threads)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: Ligra-proxy elapsed=%v\n", res.Metrics.Total)
	case "async":
		prog, runG := baselineProgram(appKey, g, graph.VertexID(*root), *iters, *domain)
		hg := heap(runG)
		g = hg
		res, _, err := async.Execute(hg, prog, *nodes)
		if err != nil {
			fatal(err)
		}
		values = res.Values
		run = res.Metrics
		fmt.Printf("system: async nodes=%d rounds=%d elapsed=%v comm=%d msgs / %d bytes\n",
			*nodes, res.Rounds, res.Metrics.Total, res.Comm.MessagesSent, res.Comm.BytesSent)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	fmt.Printf("iterations=%d computations=%d updates=%d suppressed=%d\n",
		len(run.Iters), run.Computations(), run.Updates(), run.Suppressed())
	if *verbose {
		for _, s := range run.Iters {
			fmt.Printf("  iter=%-3d mode=%-4s active=%-8d comps=%-10d updates=%-8d suppressed=%d\n",
				s.Iter, s.Mode, s.ActiveVerts, s.Computations, s.Updates, s.Suppressed)
		}
	}
	printSample(appKey, g, values)
}

// usage prints the flag defaults followed by the registered
// application × value-domain table.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
	flag.PrintDefaults()
	fmt.Fprintln(flag.CommandLine.Output(), "\nRegistered applications (application: domains, aggregation):")
	byKey := map[string][]string{}
	agg := map[string]core.AggKind{}
	var keys []string
	for _, a := range apps.Runnables() {
		if _, ok := byKey[a.Key]; !ok {
			keys = append(keys, a.Key)
		}
		byKey[a.Key] = append(byKey[a.Key], a.Domain)
		agg[a.Key] = a.Agg
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %-18s %s\n", k, strings.Join(byKey[k], " "), agg[k])
	}
	fmt.Fprintln(flag.CommandLine.Output(), "  plus whole-graph analytics: triangles | kcore | clique | mst | diameter (f64)")
}

// loadGraph opens the input as a graph.View: .slfc files are served from
// disk (mmap'd, or out-of-core under -mem-budget); everything else is
// parsed onto the heap. The close function releases any file mapping.
func loadGraph(path, dataset string, scale int, budget int64) (graph.View, func() error, error) {
	if path != "" {
		return loader.OpenView(path, budget)
	}
	if dataset != "" {
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, nil, err
		}
		return d.Proxy(scale), func() error { return nil }, nil
	}
	return nil, nil, fmt.Errorf("one of -graph or -dataset is required")
}

// heap materialises a disk-backed view for the baselines that interpret the
// in-memory CSR directly; a heap graph passes through untouched.
func heap(g graph.View) *graph.Graph {
	if hg, ok := g.(*graph.Graph); ok {
		return hg
	}
	hg, err := graph.Materialize(g)
	if err != nil {
		fatal(err)
	}
	return hg
}

// baselineProgram builds the float64 program the proxy baselines run (they
// interpret Program hooks directly and support only the f64 domain); for CC
// it returns the symmetrised graph.
func baselineProgram(app string, g graph.View, root graph.VertexID, iters int, domain string) (*core.Program[float64], graph.View) {
	if domain != "f64" {
		fatal(fmt.Errorf("baseline systems run the f64 domain only (got -domain %s)", domain))
	}
	switch app {
	case "sssp":
		return apps.SSSP(root), g
	case "bfs":
		return apps.BFS(root), g
	case "cc":
		sym := apps.Symmetrize(g)
		return apps.CC(sym), sym
	case "wp":
		return apps.WP(root), g
	case "pr":
		return apps.PageRank(iters), g
	case "tr":
		return apps.TunkRank(iters), g
	case "spmv":
		return apps.SpMV(iters), g
	case "numpaths":
		return apps.NumPaths(root, iters), g
	case "heat":
		return apps.HeatSimulation([]graph.VertexID{root}, iters), g
	case "bp":
		// Demo priors: the root holds positive evidence.
		prior := func(_ graph.View, v graph.VertexID) float64 {
			if v == root {
				return 2
			}
			return 0
		}
		return apps.BeliefPropagation(prior, apps.BeliefCoupling, iters), g
	}
	fatal(fmt.Errorf("unknown app %q for baseline systems", app))
	return nil, nil
}

// runAnalytics handles the applications that are whole-graph analyses
// rather than vertex-property programs. It reports whether app was handled.
func runAnalytics(app string, g graph.View, root graph.VertexID, opt cluster.Options) bool {
	switch app {
	case "triangles":
		st, err := apps.TriangleCount(g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("triangles: %d (comm %d msgs / %d bytes)\n", st.Triangles, st.Comm.MessagesSent, st.Comm.BytesSent)
	case "kcore":
		cores, err := apps.KCore(g, opt)
		if err != nil {
			fatal(err)
		}
		hist := map[uint32]int{}
		maxCore := uint32(0)
		for _, c := range cores {
			hist[c]++
			if c > maxCore {
				maxCore = c
			}
		}
		fmt.Printf("max coreness: %d\n", maxCore)
		for k := uint32(0); k <= maxCore; k++ {
			if hist[k] > 0 {
				fmt.Printf("  core %d: %d vertices\n", k, hist[k])
			}
		}
	case "clique":
		cl, err := apps.MaxCliqueApprox(g, 32, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("clique: size %d (k-core bound %d) members %v\n", len(cl.Members), cl.CoreBound, cl.Members)
	case "mst":
		f, err := apps.MST(g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum spanning forest: %d edges, weight %.3f, %d Borůvka rounds\n", len(f.Edges), f.Weight, f.Rounds)
	case "diameter":
		samples := []graph.VertexID{root}
		for i := 1; i < 8 && i < g.NumVertices(); i++ {
			samples = append(samples, graph.VertexID(i*(g.NumVertices()/8)))
		}
		d, err := apps.ApproxDiameter(g, samples, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("approximate diameter (lower bound from %d BFS samples): %d\n", len(samples), d)
	default:
		return false
	}
	return true
}

func printSample(app string, g graph.View, values []float64) {
	if len(values) == 0 {
		return
	}
	switch app {
	case "pr", "tr":
		scores := values
		if app == "pr" {
			scores = apps.PageRankScores(g, values)
		} else {
			scores = apps.TunkRankScores(g, values)
		}
		type kv struct {
			v graph.VertexID
			s float64
		}
		top := make([]kv, 0, len(scores))
		for v, s := range scores {
			top = append(top, kv{graph.VertexID(v), s})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].s > top[j].s })
		fmt.Println("top 5 vertices:")
		for i := 0; i < 5 && i < len(top); i++ {
			fmt.Printf("  #%d vertex %d score %.6f\n", i+1, top[i].v, top[i].s)
		}
	default:
		fmt.Println("first 10 values:")
		for v := 0; v < 10 && v < len(values); v++ {
			fmt.Printf("  vertex %d: %g\n", v, values[v])
		}
	}
}

// formatPicks renders the codec-choice counts in stable name order.
func formatPicks(picks map[string]int64) string {
	if len(picks) == 0 {
		return "none"
	}
	names := make([]string, 0, len(picks))
	for n := range picks {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, picks[n])
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slfe-run:", err)
	os.Exit(1)
}
