// Command slfe-rrg manages redundancy-reduction guidance files (§3.2).
// Guidance is reusable across applications on the same graph (the paper's
// §4.4 amortisation argument, citing Facebook's 8.7 jobs per graph), so
// generating it once and loading it per job saves the preprocessing cost.
//
// Usage:
//
//	slfe-rrg gen -dataset FS -scale 1000 -o fs.rrg        # generate + save
//	slfe-rrg gen -graph g.slfg -roots 0,17,42 -o g.rrg    # custom roots
//	slfe-rrg info -i fs.rrg                               # inspect a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/rrg"
	"slfe/internal/ws"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		genCmd(os.Args[2:])
	case "info":
		infoCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: slfe-rrg gen|info [flags]  (run with -h for flags)")
	os.Exit(2)
}

func genCmd(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	path := fs.String("graph", "", "graph file (text or .slfg)")
	dataset := fs.String("dataset", "", "Table 4 dataset code instead of -graph")
	scale := fs.Int("scale", 1000, "dataset down-scale factor")
	rootsFlag := fs.String("roots", "", "comma-separated root vertices (default: automatic)")
	out := fs.String("o", "", "output guidance file (required)")
	threads := fs.Int("threads", 0, "preprocessing threads (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("gen: -o is required"))
	}

	g, err := loadGraph(*path, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	roots, err := parseRoots(*rootsFlag, g)
	if err != nil {
		fatal(err)
	}
	gd := rrg.Generate(g, roots, ws.New(*threads, true))
	fmt.Printf("guidance: rounds=%d maxLastIter=%d generated in %v\n",
		gd.Rounds, gd.MaxLastIter, gd.GenTime)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := gd.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes); reuse it with cluster.Options.Guidance\n", *out, n)
}

func infoCmd(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "guidance file (required)")
	buckets := fs.Int("buckets", 10, "histogram buckets")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("info: -i is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	gd, err := rrg.ReadGuidance(f)
	if err != nil {
		fatal(err)
	}

	n := len(gd.LastIter)
	reached := 0
	var sum int64
	for v := 0; v < n; v++ {
		if gd.Reached(graph.VertexID(v)) {
			reached++
			sum += int64(gd.LastIter[v])
		}
	}
	fmt.Printf("vertices:    %d\n", n)
	fmt.Printf("reached:     %d (%.1f%%)\n", reached, 100*float64(reached)/float64(n))
	fmt.Printf("rounds:      %d\n", gd.Rounds)
	fmt.Printf("maxLastIter: %d\n", gd.MaxLastIter)
	if reached > 0 {
		fmt.Printf("avgLastIter: %.2f\n", float64(sum)/float64(reached))
	}
	if gd.MaxLastIter > 0 && *buckets > 0 {
		hist := make([]int, *buckets)
		width := (int(gd.MaxLastIter) + *buckets) / *buckets
		for v := 0; v < n; v++ {
			if gd.Reached(graph.VertexID(v)) {
				hist[int(gd.LastIter[v])/width]++
			}
		}
		fmt.Println("lastIter histogram:")
		for b, count := range hist {
			fmt.Printf("  [%3d..%3d): %d\n", b*width, (b+1)*width, count)
		}
	}
}

func parseRoots(s string, g *graph.Graph) ([]graph.VertexID, error) {
	if s == "" {
		return rrg.DefaultRoots(g), nil
	}
	var roots []graph.VertexID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad root %q: %w", part, err)
		}
		if id >= uint64(g.NumVertices()) {
			return nil, fmt.Errorf("root %d out of range (|V|=%d)", id, g.NumVertices())
		}
		roots = append(roots, graph.VertexID(id))
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("no roots parsed from %q", s)
	}
	return roots, nil
}

func loadGraph(path, dataset string, scale int) (*graph.Graph, error) {
	if path != "" {
		return loader.LoadFile(path)
	}
	if dataset != "" {
		d, err := gen.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Proxy(scale), nil
	}
	return nil, fmt.Errorf("one of -graph or -dataset is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slfe-rrg:", err)
	os.Exit(1)
}
