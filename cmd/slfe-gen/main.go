// Command slfe-gen generates synthetic graphs.
//
// Usage:
//
//	slfe-gen -kind rmat -n 100000 -m 1000000 -maxw 64 -o graph.slfg
//	slfe-gen -kind dataset -name FS -scale 1000 -o fs.slfg
//	slfe-gen -kind grid -rows 100 -cols 100 -o grid.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slfe/internal/gen"
	"slfe/internal/graph"
	"slfe/internal/loader"
	"slfe/internal/store"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat | uniform | grid | path | star | clustered | dataset")
	n := flag.Int("n", 1000, "vertices")
	m := flag.Int64("m", 10000, "edges")
	maxw := flag.Int("maxw", 1, "maximum edge weight (weights are uniform in [1,maxw])")
	seed := flag.Int64("seed", 1, "random seed")
	rows := flag.Int("rows", 10, "grid rows")
	cols := flag.Int("cols", 10, "grid cols")
	clusters := flag.Int("clusters", 4, "clustered: cluster count")
	bridges := flag.Int("bridges", 8, "clustered: inter-cluster bridges")
	name := flag.String("name", "PK", "dataset: short code from Table 4 (PK OK LJ WK DI ST FS RMAT)")
	scale := flag.Int("scale", 100, "dataset: down-scale factor")
	out := flag.String("o", "", "output path (.slfc = compressed CSR, .slfg = binary, otherwise text); default stdout text")
	flag.Parse()

	// Validate sizes up front: the generators index slices by these, so a
	// negative value would otherwise surface as a runtime panic.
	if *n < 0 || *m < 0 {
		fatal(fmt.Errorf("-n and -m must be non-negative (got n=%d m=%d)", *n, *m))
	}
	if *rows < 1 || *cols < 1 {
		fatal(fmt.Errorf("-rows and -cols must be at least 1 (got rows=%d cols=%d)", *rows, *cols))
	}
	if *clusters < 1 {
		fatal(fmt.Errorf("-clusters must be at least 1 (got %d)", *clusters))
	}
	if *bridges < 0 {
		fatal(fmt.Errorf("-bridges must be non-negative (got %d)", *bridges))
	}
	if *maxw < 1 {
		fatal(fmt.Errorf("-maxw must be at least 1 (got %d)", *maxw))
	}
	if *scale < 1 {
		fatal(fmt.Errorf("-scale must be at least 1 (got %d)", *scale))
	}

	// Streaming path: writing .slfc from a streamable generator never
	// materialises the edge slice — edges flow through the store builder's
	// spill file, so -m is bounded by disk, not RAM.
	if strings.HasSuffix(*out, ".slfc") {
		var streamN int
		var stream func(emit func(src, dst graph.VertexID, w float32) error) error
		switch *kind {
		case "rmat":
			streamN = *n
			stream = func(emit func(graph.VertexID, graph.VertexID, float32) error) error {
				return gen.RMATStream(*n, *m, gen.DefaultRMAT, *maxw, *seed, emit)
			}
		case "uniform":
			streamN = *n
			stream = func(emit func(graph.VertexID, graph.VertexID, float32) error) error {
				return gen.UniformStream(*n, *m, *maxw, *seed, emit)
			}
		case "dataset":
			d, err := gen.ByName(*name)
			if err != nil {
				fatal(err)
			}
			streamN, _ = d.ProxySize(*scale)
			stream = func(emit func(graph.VertexID, graph.VertexID, float32) error) error {
				return d.ProxyStream(*scale, emit)
			}
		}
		if stream != nil {
			b, err := store.NewBuilder(*out, streamN)
			if err != nil {
				fatal(err)
			}
			if err := stream(b.Add); err != nil {
				b.Abort()
				fatal(err)
			}
			if err := b.Finish(); err != nil {
				fatal(err)
			}
			st, _ := os.Stat(*out)
			fmt.Fprintf(os.Stderr, "streamed %d vertices to %s (%d bytes)\n", streamN, *out, st.Size())
			return
		}
	}

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = gen.RMAT(*n, *m, gen.DefaultRMAT, *maxw, *seed)
	case "uniform":
		g = gen.Uniform(*n, *m, *maxw, *seed)
	case "grid":
		g = gen.Grid(*rows, *cols, *maxw, *seed)
	case "path":
		g = gen.Path(*n)
	case "star":
		g = gen.Star(*n)
	case "clustered":
		g = gen.Clustered(*n, *clusters, *bridges, *seed)
	case "dataset":
		d, err := gen.ByName(*name)
		if err != nil {
			fatal(err)
		}
		g = d.Proxy(*scale)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)
	if *out == "" {
		if err := loader.WriteEdgeList(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}
	if err := loader.SaveFile(*out, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slfe-gen:", err)
	os.Exit(1)
}
