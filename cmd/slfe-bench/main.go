// Command slfe-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	slfe-bench -exp table5 -scale 1000 -nodes 8
//	slfe-bench -exp all
//
// Each experiment prints an aligned text table; see EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"slfe/internal/bench"
	"slfe/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all | "+names()+")")
	scale := flag.Int("scale", 1000, "dataset down-scale factor (100 = DESIGN.md default size)")
	nodes := flag.Int("nodes", 8, "simulated cluster size")
	threads := flag.Int("threads", 1, "threads per node")
	prIters := flag.Int("pr-iters", 30, "PageRank/TunkRank iterations")
	out := flag.String("out", "", "directory for raw TSV series exports (empty: disabled)")
	flag.Parse()

	if *nodes < 1 || *threads < 0 || *scale < 1 || *prIters < 1 {
		fmt.Fprintf(os.Stderr, "slfe-bench: invalid sizes (-nodes %d -threads %d -scale %d -pr-iters %d); "+
			"-nodes, -scale and -pr-iters must be at least 1, -threads non-negative\n",
			*nodes, *threads, *scale, *prIters)
		os.Exit(2)
	}

	cfg := bench.Config{
		Scale:   *scale,
		Nodes:   *nodes,
		Threads: *threads,
		PRIters: *prIters,
		Out:     os.Stdout,
	}
	var exporter *trace.Exporter
	if *out != "" {
		exporter = &trace.Exporter{Dir: *out}
		cfg.Trace = exporter
	}
	defer func() {
		if exporter != nil {
			fmt.Fprintf(os.Stderr, "slfe-bench: wrote %d TSV series to %s\n", len(exporter.Files()), *out)
		}
	}()
	if *exp == "all" {
		if err := bench.All(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "slfe-bench:", err)
			os.Exit(1)
		}
		return
	}
	fn, ok := bench.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "slfe-bench: unknown experiment %q (want all | %s)\n", *exp, names())
		os.Exit(2)
	}
	if err := fn(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "slfe-bench:", err)
		os.Exit(1)
	}
}

func names() string {
	var ns []string
	for n := range bench.Experiments {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return strings.Join(ns, " | ")
}
