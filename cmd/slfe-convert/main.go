// Command slfe-convert converts graphs between the text edge-list format
// and the packed binary format (input format is sniffed automatically;
// output format follows the extension, .slfg = binary).
//
// Usage:
//
//	slfe-convert -i graph.txt -o graph.slfg
package main

import (
	"flag"
	"fmt"
	"os"

	"slfe/internal/loader"
)

func main() {
	in := flag.String("i", "", "input path (required)")
	out := flag.String("o", "", "output path (required; .slfg = binary)")
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "slfe-convert: -i and -o are required")
		os.Exit(2)
	}
	g, err := loader.LoadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slfe-convert:", err)
		os.Exit(1)
	}
	if err := loader.SaveFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "slfe-convert:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "converted %v -> %s\n", g, *out)
}
