// Command slfe-convert converts graphs between the text edge-list format,
// the packed binary format and the compressed CSR format (input format is
// sniffed automatically; output format follows the extension, .slfg =
// binary, .slfc = compressed CSR).
//
// Usage:
//
//	slfe-convert -i graph.txt -o graph.slfg
//	slfe-convert -i graph.slfg -o graph.slfc
//	slfe-convert -check graph.slfc
package main

import (
	"flag"
	"fmt"
	"os"

	"slfe/internal/loader"
	"slfe/internal/store"
)

func main() {
	in := flag.String("i", "", "input path (required unless -check)")
	out := flag.String("o", "", "output path (required unless -check; .slfg = binary, .slfc = compressed CSR)")
	check := flag.String("check", "", "deep-validate an .slfc file (every block, every varint) and exit")
	flag.Parse()
	if *check != "" {
		g, err := store.Open(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slfe-convert:", err)
			os.Exit(1)
		}
		defer g.Close()
		if err := g.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "slfe-convert:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ok: %v\n", g)
		return
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "slfe-convert: -i and -o are required")
		os.Exit(2)
	}
	g, err := loader.LoadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slfe-convert:", err)
		os.Exit(1)
	}
	if err := loader.SaveFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "slfe-convert:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "converted %v -> %s\n", g, *out)
}
