// Package slfe's root benchmarks regenerate each of the paper's tables and
// figures through the experiment harness (one testing.B benchmark per
// artefact) plus micro-benchmarks of the engine primitives the evaluation
// rests on. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use heavily down-scaled dataset proxies so the whole
// suite completes in minutes; use cmd/slfe-bench for full-scale tables.
package slfe_test

import (
	"io"
	"math"
	"testing"

	"slfe/internal/apps"
	"slfe/internal/bench"
	"slfe/internal/cluster"
	"slfe/internal/compress"
	"slfe/internal/gen"
	"slfe/internal/rrg"
	"slfe/internal/ws"
)

// benchConfig is the shared, down-scaled experiment configuration.
func benchConfig() bench.Config {
	return bench.Config{Scale: 20000, Nodes: 4, Threads: 1, PRIters: 10, Out: io.Discard}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	fn, ok := bench.Experiments[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artefact.

func BenchmarkTable1Registry(b *testing.B)             { runExperiment(b, "table1") }
func BenchmarkTable2UpdatesPerVertex(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkTable4Datasets(b *testing.B)             { runExperiment(b, "table4") }
func BenchmarkFigure2ECVertices(b *testing.B)          { runExperiment(b, "fig2") }
func BenchmarkFigure4PullPushBreakdown(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkTable5SystemsComparison(b *testing.B)    { runExperiment(b, "table5") }
func BenchmarkFigure5GeminiImprovement(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFigure6IntraNodeScaling(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFigure7InterNodeScaling(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFigure8PreprocessOverhead(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFigure9ComputationsPerIter(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFigure10Balance(b *testing.B)            { runExperiment(b, "fig10") }

// Ablations beyond the paper's own artefacts (see DESIGN.md §3).

func BenchmarkAblationDenseThreshold(b *testing.B) { runExperiment(b, "ablation-dense") }
func BenchmarkAblationPartition(b *testing.B)      { runExperiment(b, "ablation-partition") }
func BenchmarkAblationGuidanceReuse(b *testing.B)  { runExperiment(b, "ablation-guidance") }
func BenchmarkAblationCodec(b *testing.B)          { runExperiment(b, "ablation-codec") }
func BenchmarkAblationRebalance(b *testing.B)      { runExperiment(b, "ablation-rebalance") }
func BenchmarkAblationReorder(b *testing.B)        { runExperiment(b, "ablation-reorder") }
func BenchmarkAblationAsync(b *testing.B)          { runExperiment(b, "ablation-async") }
func BenchmarkAnalyticsApps(b *testing.B)          { runExperiment(b, "analytics") }
func BenchmarkAblationIncrementalRRG(b *testing.B) { runExperiment(b, "ablation-incremental") }
func BenchmarkPipelineBreakdown(b *testing.B)      { runExperiment(b, "pipeline") }
func BenchmarkDeltaSyncStrategies(b *testing.B)    { runExperiment(b, "deltasync") }
func BenchmarkHotpathAllocations(b *testing.B)     { runExperiment(b, "hotpath") }

// Micro-benchmarks of the pieces the experiments compose.

func BenchmarkRRGGeneration(b *testing.B) {
	g := gen.RMAT(1<<15, 1<<18, gen.DefaultRMAT, 1, 3)
	roots := rrg.DefaultRoots(g)
	sched := ws.New(1, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rrg.Generate(g, roots, sched)
	}
}

func BenchmarkSSSPWithRR(b *testing.B)    { benchSSSP(b, true) }
func BenchmarkSSSPWithoutRR(b *testing.B) { benchSSSP(b, false) }

func benchSSSP(b *testing.B, rr bool) {
	g := gen.RMAT(1<<14, 1<<17, gen.DefaultRMAT, 64, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Execute(g, apps.SSSP(0), cluster.Options{Nodes: 2, RR: rr, Stealing: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankWithRR(b *testing.B)    { benchPR(b, true) }
func BenchmarkPageRankWithoutRR(b *testing.B) { benchPR(b, false) }

func benchPR(b *testing.B, rr bool) {
	g := gen.RMAT(1<<13, 1<<16, gen.DefaultRMAT, 1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Execute(g, apps.PageRank(20), cluster.Options{Nodes: 2, RR: rr, Stealing: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCC8Nodes(b *testing.B) {
	g := apps.Symmetrize(gen.RMAT(1<<13, 1<<16, gen.DefaultRMAT, 1, 6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Execute(g, apps.CC(g), cluster.Options{Nodes: 8, RR: true, Stealing: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Push-combine microbenchmark: the flat combiner against the seed's
// map-based exchange. DenseDivisor=1 keeps SSSP in push mode on every
// non-empty frontier, so the run is dominated by the combining path under
// comparison; -benchmem shows the allocation gap.
func BenchmarkPushCombineFlat(b *testing.B) { benchPushCombine(b, false) }
func BenchmarkPushCombineMap(b *testing.B)  { benchPushCombine(b, true) }

func benchPushCombine(b *testing.B, mapPush bool) {
	g := gen.RMAT(1<<14, 1<<17, gen.DefaultRMAT, 64, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Execute(g, apps.SSSP(0), cluster.Options{
			Nodes: 2, Threads: 2, Stealing: true, MapPush: mapPush, DenseDivisor: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Codec microbenchmark: pooled append-encode against the allocating encode
// over a representative dense delta batch (adaptive codec tries all three
// candidates either way).
func BenchmarkCodecAppendEncode(b *testing.B) {
	ids, vals := codecBatch()
	var sc compress.EncodeScratch
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = compress.AppendEncodeBest(buf[:0], &sc, 8, ids, vals)
	}
}

func BenchmarkCodecEncode(b *testing.B) {
	ids, vals := codecBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compress.EncodeBest(8, ids, vals)
	}
}

func codecBatch() ([]uint32, []uint64) {
	ids := make([]uint32, 4096)
	vals := make([]uint64, 4096)
	for i := range ids {
		ids[i] = uint32(i * 3)
		vals[i] = math.Float64bits(float64(i % 17))
	}
	return ids, vals
}
